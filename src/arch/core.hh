/**
 * @file
 * The Piton core: a single-issue, six-stage, in-order SPARC-style core
 * with two-way fine-grained multithreading (a modified OpenSPARC T1).
 *
 * Modelled behaviours that the characterization depends on:
 *  - fine-grained thread interleaving: each cycle the issue slot goes
 *    round-robin to a ready thread, hiding long-latency instructions of
 *    the other thread (Section IV-H's multithreading-vs-multicore
 *    study);
 *  - instruction occupancy per Table VI (a thread cannot issue again
 *    until its previous instruction's latency elapses);
 *  - an eight-entry store buffer that drains one store per store
 *    latency; stores are issued speculatively and roll back when the
 *    buffer is full (the paper's stx(F) vs stx(NF) distinction);
 *  - load-hit speculation with rollback on a miss;
 *  - per-instruction energy charged with operand-value-dependent
 *    switching activity (Fig. 11's min/random/max operand series).
 */

#ifndef PITON_ARCH_CORE_HH
#define PITON_ARCH_CORE_HH

#include <algorithm>
#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "arch/mem_system.hh"
#include "common/types.hh"
#include "config/piton_params.hh"
#include "isa/alu.hh"
#include "isa/program.hh"
#include "power/energy_model.hh"

namespace piton::ckpt
{
class Archive;
class ProgramTable;
}

namespace piton::arch
{

enum class ThreadStatus : std::uint8_t
{
    Idle,    ///< no program loaded
    Ready,   ///< can issue when readyAt <= now
    Halted,  ///< executed Halt
};

struct ThreadState
{
    std::array<RegVal, isa::kNumIntRegs> regs{};
    std::array<RegVal, isa::kNumFpRegs> fregs{};
    isa::CondCodes cc;
    const isa::Program *program = nullptr;
    std::uint32_t pc = 0;
    ThreadStatus status = ThreadStatus::Idle;
    Cycle readyAt = 0;

    /**
     * MRU fetch filter: the L1I line this thread last fetched from and
     * its resident-line handle.  A repeat fetch revalidates tag+state
     * on the cached line and applies the same LRU touch the full
     * lookup would, skipping the associative way scan (whose data-
     * dependent early exit mispredicts badly with 50 interleaved
     * threads).  Any mismatch falls back to MemorySystem::ifetch.
     */
    Addr fetchLine = ~Addr{0};
    CacheLine *fetchRef = nullptr;

    // Statistics.
    std::uint64_t instsExecuted = 0;
    /** Retired instructions per energy class (power-model fitting). */
    std::array<std::uint64_t,
               static_cast<std::size_t>(isa::InstClass::NumClasses)>
        classCounts{};
    std::uint64_t loadRollbacks = 0;
    std::uint64_t storeRollbacks = 0;
    std::uint64_t memStallCycles = 0;
};

class Core
{
  public:
    Core(TileId tile, const config::PitonParams &params,
         MemorySystem &mem, const power::EnergyModel &energy,
         power::EnergyLedger &ledger, power::TileEnergyLedger &tile_energy,
         double dyn_factor = 1.0);

    TileId tileId() const { return tile_; }

    /**
     * Enable Execution Drafting (the Piton core's energy-efficiency
     * mechanism for similar code on the two threads, McKeown et al.
     * MICRO'14): when a thread issues the same static instruction its
     * sibling just executed, the duplicated front-end work is saved.
     */
    void
    setExecDrafting(bool enabled)
    {
        if (enabled != execDrafting_)
            std::fill(lastIssue_.begin(), lastIssue_.end(),
                      std::pair<const isa::Program *, std::uint32_t>{
                          nullptr, 0});
        execDrafting_ = enabled;
    }
    bool execDrafting() const { return execDrafting_; }
    /** Instructions that issued drafted (diagnostics). */
    std::uint64_t draftedInsts() const { return draftedInsts_; }
    /** Hardware thread switches charged (diagnostics). */
    std::uint64_t threadSwitches() const { return threadSwitches_; }

    /**
     * Load a program onto a hardware thread.  Initial integer registers
     * may be seeded (workloads pass base addresses / thread ids here).
     */
    void loadProgram(ThreadId tid, const isa::Program *program,
                     const std::vector<std::pair<int, RegVal>> &init_regs = {});

    /**
     * Advance the core at cycle `now`.
     * @return true if an instruction issued this cycle.
     */
    bool tick(Cycle now);

    /**
     * DVFS duty gate (sim::System's per-tile frequency actuation,
     * DESIGN.md §13): a gated core reports no events and ignores
     * tick(), so neither engine ever runs it.  Only toggled between
     * run() calls — gating never changes inside a run window, which is
     * what keeps the charge-replay order independent of it.  Purely a
     * scheduling veto: thread state, store buffer, and statistics are
     * untouched, so ungating resumes exactly where the core paused.
     */
    void setDvfsGated(bool gated) { dvfsGated_ = gated; }
    bool dvfsGated() const { return dvfsGated_; }

    /** Total memory-stall cycles across this core's threads (the
     *  per-tile cache-pressure signal the governors consume). */
    std::uint64_t
    memStallCycles() const
    {
        std::uint64_t n = 0;
        for (const auto &t : threads_)
            n += t.memStallCycles;
        return n;
    }

    /** Earliest future cycle at which this core can do work, or
     *  `kNever` when all threads are idle/halted. */
    static constexpr Cycle kNever = ~Cycle{0};
    Cycle nextEventCycle(Cycle now) const
    {
        if (dvfsGated_)
            return kNever;
        Cycle next = kNever;
        for (const auto &t : threads_) {
            if (t.status != ThreadStatus::Ready)
                continue;
            next = std::min(next, std::max(t.readyAt, now));
        }
        return next;
    }

    /** Outcome of a batched runWindow call. */
    struct WindowResult
    {
        /** Raw next-event cycle after the window (kNever when all
         *  threads halted); always > the window's `until` bound. */
        Cycle next = kNever;
        /** The last cycle this core ticked (>= the window's `from`). */
        Cycle last = 0;
    };

    /** Outcome of a run-ahead slice (see runAhead / resumeShared). */
    struct AheadResult
    {
        /** When paused: the cycle of the pending shared-memory op.
         *  Otherwise: the next event cycle (>= the slice limit, or
         *  kNever when all threads halted). */
        Cycle next = kNever;
        /** Last cycle this core ticked; only valid when `ticked`. */
        Cycle last = 0;
        /** Stopped *before* a shared-memory op at cycle `next`. */
        bool paused = false;
        /** At least one tick executed in this slice. */
        bool ticked = false;
    };

    /**
     * Run-ahead slice for the chip's core-major scheduler: execute this
     * core's events in [from, lim) as long as they are provably
     * core-local (ALU/branch/halt instructions whose fetch hits the
     * tile's own L1I).  The slice pauses *before* the first event that
     * would touch MemorySystem (load/store/CAS or an I-fetch miss) so
     * the chip can execute shared-memory ops in global (cycle, core)
     * order.  Energy charges are expected to be captured by the ledger
     * (EnergyLedger::beginCapture) and replayed in global order.
     */
    AheadResult runAhead(Cycle from, Cycle lim);

    /** Execute the pending shared-memory op at cycle `c` (the pause
     *  point a previous runAhead returned), then continue running
     *  ahead core-locally until the next shared op or `lim`. */
    AheadResult resumeShared(Cycle c, Cycle lim);

    /** Whether a per-instruction trace hook is installed (the chip's
     *  run-ahead scheduler is disabled then: hook invocation order
     *  across cores is observable). */
    bool hasTraceHook() const { return static_cast<bool>(trace_); }

    /**
     * Fast-path batched issue: run this core's events in the inclusive
     * window [from, until] without returning to the chip loop.  The
     * caller (PitonChip's event scheduler) guarantees no other core
     * has an event inside the window, so per-instruction charge order
     * matches the legacy per-cycle stepping exactly.
     */
    WindowResult runWindow(Cycle from, Cycle until)
    {
        Cycle cur = from;
        for (;;) {
            tick(cur);
            const Cycle next = nextEventCycle(cur + 1);
            if (next == kNever || next > until)
                return {next, cur};
            cur = next;
        }
    }

    bool allThreadsDone() const;

    const ThreadState &thread(ThreadId tid) const { return threads_[tid]; }
    std::uint32_t threadCount() const
    {
        return static_cast<std::uint32_t>(threads_.size());
    }
    std::uint64_t totalInsts() const;

    /** Cumulative core-local energy charged by this tile's core (exec,
     *  thread switches, store rollbacks) — the per-tile slice of the
     *  chip ledger the telemetry subsystem samples.  Shared-fabric
     *  energy (caches, NoC, off-chip) is charged by MemorySystem and
     *  is not tile-attributable.  Lives in the chip's SoA
     *  TileEnergyLedger; this is the AoS view of this tile's slot. */
    power::RailEnergy coreEnergy() const { return tileEnergy_.at(tile_); }

    /**
     * Divert this core's charges into `log` (entries cycle-tagged
     * relative to `base`, carrying kCapturedCoreBit) instead of
     * accumulating, until endCapture().  The chip's run-ahead scheduler
     * brackets each round with this; because the diverted state is
     * core-owned, phase-1 slices of different cores capture
     * concurrently without sharing anything (DESIGN.md §12).  The
     * core's charge cycle is maintained internally by the run-ahead
     * loops (capCycle_).
     */
    void beginCapture(std::vector<power::CapturedCharge> *log, Cycle base)
    {
        capLog_ = log;
        capBase_ = base;
    }
    void endCapture() { capLog_ = nullptr; }

    /** Store-buffer occupancy (diagnostics / tests). */
    std::size_t storeBufferDepth(Cycle now) const;

    // ---- BBV profiling (DESIGN.md §14) -------------------------------

    /**
     * Enable basic-block-vector accumulation: every retired instruction
     * bumps one of `buckets` hashed PC-histogram counters (noteBbv).
     * `buckets` must be a power of two in [2, 2^20]; 0 disables and
     * frees the histogram.  Unlike the trace hook this does not disable
     * the run-ahead engine: the counters are commutative integers
     * bumped in retire order, identical under both engines and at any
     * shard count.
     */
    void enableBbv(std::uint32_t buckets);
    std::uint32_t bbvBuckets() const { return bbvBuckets_; }
    /** The histogram (size bbvBuckets(); empty when disabled). */
    const std::vector<std::uint64_t> &bbvCounts() const { return bbv_; }
    /** Mutable view for the chip's checkpoint code (chip.bbv). */
    std::vector<std::uint64_t> &bbvData() { return bbv_; }

    /**
     * Per-instruction trace hook (gem5-style exec tracing): invoked
     * after every retired instruction with (tile, thread, cycle, pc,
     * instruction).  Empty function disables tracing.
     */
    using InstTraceHook = std::function<void(
        TileId, ThreadId, Cycle, Addr, const isa::Instruction &)>;
    void setTraceHook(InstTraceHook hook) { trace_ = std::move(hook); }

    /**
     * Checkpoint hook.  Program pointers go through `pt`; the caller
     * must have restored the memory system first (the per-thread MRU
     * fetch handle is re-resolved against the restored L1I).  The
     * store-buffer ring is saved in normalized form (live entries from
     * the head; restored with head 0), which is behaviourally identical
     * — only the live range is ever observed.
     */
    void serialize(ckpt::Archive &ar, const ckpt::ProgramTable &pt);

  private:
    /** What a tickImpl call did. */
    enum class TickOutcome : std::uint8_t
    {
        NoPick, ///< no thread could issue this cycle
        Picked, ///< a thread issued (or stalled in ifetch) this cycle
        Paused, ///< Ahead mode only: stopped before a shared-memory op
    };

    /**
     * One scheduling cycle.  Ahead mode returns Paused — with no state
     * mutated beyond the (idempotent, invisible) store-buffer drain —
     * when the picked thread's next action would touch MemorySystem.
     */
    template <bool Ahead>
    TickOutcome tickImpl(Cycle now);

    /** Would issuing thread `t` touch MemorySystem?  True for
     *  load/store/CAS instructions and for fetches that miss both the
     *  MRU filter and the tile's own L1I. */
    bool sharedPick(const ThreadState &t) const;

    /** The general per-cycle run-ahead loop (tickImpl<true> per event). */
    AheadResult runAheadGeneric(Cycle from, Cycle lim);

    /**
     * Specialized run-ahead for the steady state of the fast path:
     * two ready threads, no Execution Drafting, no pending stores.
     * Executes ALU/branch instructions whose fetch stays core-local in
     * a tight loop that skips the pick scan, store-buffer drain and
     * next-event recomputation of the generic path, falling back to
     * runAheadGeneric at the first event it cannot prove equivalent.
     * Charge order per cycle (switch, fetch, exec) matches tickImpl.
     */
    AheadResult runAheadBurst(Cycle from, Cycle lim);

    void issue(ThreadState &t, ThreadId tid, Cycle now);

    /** Charge to the chip ledger and the per-tile accumulator.
     *  Inline: this is called once or twice per issued instruction.
     *  Under a core capture the charge lands in the core-owned log —
     *  no shared ledger access — which is what makes phase-1 slices
     *  raceless across shards; replay applies both shares later. */
    void
    charge(power::Category c, const power::RailEnergy &e)
    {
        if (capLog_) {
            capLog_->push_back(
                {e, static_cast<std::uint32_t>(capCycle_ - capBase_),
                 static_cast<std::uint8_t>(static_cast<std::uint8_t>(c)
                                           | power::kCapturedCoreBit)});
            return;
        }
        if (ledger_.addCore(c, e))
            return; // captured: replay applies the per-tile share
        tileEnergy_.add(tile_, e);
    }

    void
    chargeExec(isa::InstClass cls, RegVal rs1, RegVal rs2)
    {
        const auto activity = power::EnergyModel::operandActivity(rs1, rs2);
        double scale = dynFactor_;
        if (draftActive_) {
            // Execution Drafting: the duplicated front-end (fetch/
            // decode) work of the drafted instruction is saved.
            scale *= 1.0 - energy_.params().execDraftFrontEndFrac;
        }
        charge(power::Category::Exec,
               energy_.instructionEnergy(cls, activity).scaled(scale));
    }
    /** BBV bump for one retired instruction: hash (thread, pc-index)
     *  into a bucket.  Fibonacci multiplicative hash; the shift keeps
     *  the high bits so the bucket count stays a pure mask-free
     *  power-of-two reduction. */
    void
    noteBbv(ThreadId tid, std::uint32_t pc)
    {
        const std::uint64_t key =
            (static_cast<std::uint64_t>(tid) << 32) | pc;
        ++bbv_[(key * 0x9E3779B97F4A7C15ull) >> bbvShift_];
    }

    void drainStoreBuffer(Cycle now);
    /** Execution-Drafting check: does (program, pc) match the sibling
     *  thread's last issued instruction? Updates draft tracking. */
    bool draftCheck(ThreadId tid, const ThreadState &t);

    TileId tile_;
    const config::PitonParams &params_;
    MemorySystem &mem_;
    const power::EnergyModel &energy_;
    power::EnergyLedger &ledger_;
    double dynFactor_;
    RegVal hwidBase_ = 0; ///< tile * threadsPerCore (Rdhwid base)
    Addr l1iLineMask_ = 0; ///< line-align mask for the fetch filter
    isa::LatencyTable lat_;

    std::vector<ThreadState> threads_;
    /** Chip-owned SoA of per-tile accumulators; this core only ever
     *  touches slot tile_. */
    power::TileEnergyLedger &tileEnergy_;
    /** BBV histogram (see enableBbv); empty when disabled. */
    std::vector<std::uint64_t> bbv_;
    /** 64 - log2(bbvBuckets_); 0 = BBV disabled (the retire-path
     *  guard, so the disabled cost is one register test). */
    std::uint32_t bbvShift_ = 0;
    std::uint32_t bbvBuckets_ = 0;
    /** Active charge-capture log (see beginCapture), or nullptr. */
    std::vector<power::CapturedCharge> *capLog_ = nullptr;
    Cycle capBase_ = 0;
    /** Cycle tag for captured charges; the run-ahead loops set it
     *  before every event they execute. */
    Cycle capCycle_ = 0;
    std::uint32_t lastIssued_ = 0;
    /** DVFS duty gate (see setDvfsGated); not checkpointed — the
     *  System re-derives it from its duty counters every window. */
    bool dvfsGated_ = false;
    bool execDrafting_ = false;
    std::uint64_t threadSwitches_ = 0;
    bool draftActive_ = false; ///< current instruction issues drafted
    std::uint64_t draftedInsts_ = 0;
    /** (program, pc) last issued per thread, for draft matching. */
    std::vector<std::pair<const isa::Program *, std::uint32_t>> lastIssue_;

    /**
     * Ring buffer of in-flight store completion cycles, capacity
     * storeBufferEntries.  Completion cycles are pushed in
     * monotonically non-decreasing order (each store drains after the
     * previous one), so the head is always the earliest completion:
     * drain pops from the head in O(1) and the occupancy is the O(1)
     * live count `sbCount_`.
     */
    std::vector<Cycle> storeBuffer_;
    std::uint32_t sbHead_ = 0;
    std::uint32_t sbCount_ = 0;
    Cycle lastStoreDrain_ = 0;

    InstTraceHook trace_;
};

} // namespace piton::arch

#endif // PITON_ARCH_CORE_HH
