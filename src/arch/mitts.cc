#include "arch/mitts.hh"

#include "common/logging.hh"

namespace piton::arch
{

Mitts::Mitts(MittsParams params) : params_(params)
{
    if (params_.enabled()) {
        piton_assert(params_.binCredits.size() == params_.numBins,
                     "binCredits must have numBins entries");
        piton_assert(params_.refillPeriod > 0, "refill period must be > 0");
        credits_ = params_.binCredits;
    }
}

std::uint32_t
Mitts::binFor(Cycle gap) const
{
    std::uint32_t bin = 0;
    while (bin + 1 < params_.numBins && gap >= (Cycle{2} << bin))
        ++bin;
    return bin;
}

void
Mitts::refillUpTo(Cycle now)
{
    if (now >= lastRefill_ + params_.refillPeriod) {
        credits_ = params_.binCredits;
        lastRefill_ = now - (now - lastRefill_) % params_.refillPeriod;
    }
}

Cycle
Mitts::requestDepartureCycle(Cycle now)
{
    ++total_;
    if (!params_.enabled())
        return now;
    refillUpTo(now);

    const Cycle gap = now - lastDeparture_;
    // Try the exact bin, then any longer-inter-arrival bin (a request
    // that waited longer than necessary can always use a longer bin).
    for (std::uint32_t b = binFor(gap); b < params_.numBins; ++b) {
        if (credits_[b] > 0) {
            --credits_[b];
            lastDeparture_ = now;
            return now;
        }
    }
    // No credit: delay to the next refill boundary.
    ++delayed_;
    const Cycle depart = lastRefill_ + params_.refillPeriod;
    refillUpTo(depart);
    // Consume from the longest available bin after refill.
    for (std::uint32_t b = params_.numBins; b-- > 0;) {
        if (credits_[b] > 0) {
            --credits_[b];
            break;
        }
    }
    lastDeparture_ = depart;
    return depart;
}

} // namespace piton::arch
