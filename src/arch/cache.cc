#include "arch/cache.hh"

#include <bit>

#include "common/logging.hh"

namespace piton::arch
{

const char *
mesiName(Mesi s)
{
    switch (s) {
      case Mesi::Invalid: return "I";
      case Mesi::Shared: return "S";
      case Mesi::Exclusive: return "E";
      case Mesi::Modified: return "M";
      default:
        piton_panic("bad MESI state");
    }
}

CacheArray::CacheArray(const config::CacheParams &params)
    : sets_(params.numSets()), ways_(params.associativity),
      lineBytes_(params.lineBytes),
      lineShift_(static_cast<std::uint32_t>(
          std::countr_zero(params.lineBytes))),
      setsPow2_((params.numSets() & (params.numSets() - 1)) == 0)
{
    piton_assert(sets_ > 0 && ways_ > 0 && lineBytes_ >= 8,
                 "bad cache geometry");
    piton_assert((lineBytes_ & (lineBytes_ - 1)) == 0,
                 "line size must be a power of two");
    pad_ = static_cast<std::uint32_t>(
        (reinterpret_cast<std::uintptr_t>(this) >> 4) % 171);
    lines_.resize(pad_ + static_cast<std::size_t>(sets_) * ways_);
}

bool
CacheArray::setState(Addr addr, Mesi state)
{
    CacheLine *cl = find(addr);
    if (!cl)
        return false;
    cl->state = state;
    return true;
}

Eviction
CacheArray::fill(Addr addr, Mesi state, Cycle now)
{
    piton_assert(state != Mesi::Invalid, "cannot fill an invalid line");
    const Addr line = lineAlign(addr);
    const std::size_t base =
        pad_ + static_cast<std::size_t>(setOf(addr)) * ways_;

    // Hit: just update state.
    if (CacheLine *cl = find(addr)) {
        cl->state = state;
        cl->lastUse = now;
        return {};
    }

    // Prefer an invalid way, else LRU.
    CacheLine *victim = &lines_[base];
    for (std::uint32_t w = 0; w < ways_; ++w) {
        CacheLine &cl = lines_[base + w];
        if (!cl.valid()) {
            victim = &cl;
            break;
        }
        if (cl.lastUse < victim->lastUse)
            victim = &cl;
    }

    Eviction ev;
    if (victim->valid()) {
        ev.happened = true;
        ev.lineAddr = victim->tag;
        ev.state = victim->state;
    }
    victim->tag = line;
    victim->state = state;
    victim->lastUse = now;
    return ev;
}

Mesi
CacheArray::invalidate(Addr addr)
{
    CacheLine *cl = find(addr);
    if (!cl)
        return Mesi::Invalid;
    const Mesi prev = cl->state;
    cl->state = Mesi::Invalid;
    return prev;
}

std::size_t
CacheArray::validCount() const
{
    std::size_t n = 0;
    for (const auto &cl : lines_)
        n += cl.valid();
    return n;
}

void
CacheArray::flushAll()
{
    for (auto &cl : lines_)
        cl = CacheLine{};
}

} // namespace piton::arch
