/**
 * @file
 * Top-level Piton chip model: 25 tiles (core + caches + NoC routers +
 * L2 slice), the shared memory system, and the cycle-driven run loop.
 *
 * Energy from micro-architectural events accumulates in the
 * EnergyLedger; time-proportional components (clock tree, leakage) are
 * computed analytically from elapsed cycles by the System layer (they
 * depend on temperature, which the board/thermal models own).
 */

#ifndef PITON_ARCH_PITON_CHIP_HH
#define PITON_ARCH_PITON_CHIP_HH

#include <algorithm>
#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "arch/core.hh"
#include "arch/mem_system.hh"
#include "arch/memory.hh"
#include "chip/chip_instance.hh"
#include "common/parallel.hh"
#include "common/types.hh"
#include "config/piton_params.hh"
#include "power/energy_model.hh"

namespace piton::arch
{

class PitonChip
{
  public:
    PitonChip(const config::PitonParams &params,
              const chip::ChipInstance &instance,
              const power::EnergyModel &energy,
              std::uint64_t seed = 0xBEEF);

    const config::PitonParams &params() const { return params_; }
    const chip::ChipInstance &instance() const { return instance_; }

    MainMemory &memory() { return memory_; }
    MemorySystem &memSystem() { return *mem_; }
    Core &core(TileId t) { return *cores_[t]; }
    const Core &core(TileId t) const { return *cores_[t]; }

    /** Load a program onto (tile, thread). */
    void loadProgram(TileId tile, ThreadId tid, const isa::Program *program,
                     const std::vector<std::pair<int, RegVal>> &init = {});

    struct RunResult
    {
        Cycle cyclesElapsed = 0;
        bool allHalted = false;
    };

    /** Advance until `max_cycles` more cycles elapse or all loaded
     *  threads halt, whichever is first. */
    RunResult run(Cycle max_cycles);

    /**
     * Select the stepping engine.  The fast path (default) is the
     * event-driven scheduler: an indexed per-core next-event cache so
     * halted/stalled cores are never touched, plus batched core-local
     * issue when a single core owns the event window.  The legacy path
     * steps every core every visited cycle; both produce bit-identical
     * architectural state and energy ledgers (tests/
     * test_fastpath_equiv.cc).
     */
    void setFastPath(bool enabled) { fastPath_ = enabled; }
    bool fastPath() const { return fastPath_; }

    /**
     * Shard the fast path's run-ahead rounds across `threads` worker
     * threads (0 = all hardware threads; clamped to the tile count).
     * Each shard owns a fixed contiguous tile range, so the partition —
     * and every simulation result, including the ledger's FP sums — is
     * bit-identical at any thread count (tests/test_fastpath_equiv.cc
     * sweeps 1/2/8).  Purely a speed knob, like fastPath itself;
     * ignored by the legacy engine and by traced runs.
     */
    void setEngineThreads(unsigned threads);
    /** Resolved shard count the next round will use (>= 1). */
    unsigned engineThreads() const { return engineThreads_; }

    /** Run-ahead rounds executed by the sharded engine so far
     *  (diagnostics; reset by resetEnergy and on restore). */
    std::uint64_t runAheadRounds() const { return runAheadRounds_; }

    Cycle now() const { return now_; }

    const power::EnergyLedger &ledger() const { return ledger_; }
    power::EnergyLedger &ledger() { return ledger_; }

    /** Per-tile SoA energy accumulators (the source tileCoreEnergyJ
     *  reads from). */
    const power::TileEnergyLedger &tileEnergy() const { return tileEnergy_; }

    /**
     * Clear all accumulated energy accounting — the chip ledger, the
     * per-tile SoA ledger, the round counter, and any per-shard round
     * scratch — without touching architectural state.  Telemetry-style
     * re-baselining; must be called between run() calls (captures are
     * never live then).
     */
    void resetEnergy();

    /** Sum of instructions executed by every thread. */
    std::uint64_t totalInsts() const;

    /** Chip-wide retired-instruction counts per energy class. */
    std::array<std::uint64_t, static_cast<std::size_t>(
                                  isa::InstClass::NumClasses)>
    classCounts() const;

    /** Enable/disable Execution Drafting on every core. */
    void setExecDrafting(bool enabled);

    /** Install a per-instruction trace hook on every core. */
    void setTraceHook(Core::InstTraceHook hook);
    /** Chip-wide drafted-instruction count. */
    std::uint64_t draftedInsts() const;

    /** Number of threads currently in the Ready state. */
    std::uint32_t activeThreads() const;

    /** True when no core has a Ready thread (loaded work all halted).
     *  Unlike run()'s allHalted this ignores DVFS gating, so it is the
     *  ground truth for "is the workload finished". */
    bool allThreadsDone() const;

    /**
     * DVFS duty gate for one tile (Core::setDvfsGated).  Only valid
     * between run() calls; the governed System drives this every
     * sample window (DESIGN.md §13).
     */
    void setTileGated(TileId t, bool gated) { cores_[t]->setDvfsGated(gated); }
    bool tileGated(TileId t) const { return cores_[t]->dvfsGated(); }

    /** Per-tile cumulative memory-stall cycles (governor telemetry). */
    std::vector<std::uint64_t> tileMemStallCycles() const;

    /** Per-tile cumulative core-local energy (J, VDD+VCS): the
     *  tile-resolved snapshot the telemetry subsystem diffs per
     *  sample window (see Core::coreEnergy for what it covers). */
    std::vector<double> tileCoreEnergyJ() const;

    /** Per-tile cumulative retired-instruction counts. */
    std::vector<std::uint64_t> tileInsts() const;

    // ---- BBV profiling (DESIGN.md §14) -------------------------------

    /**
     * Enable basic-block-vector accumulation on every core: each
     * retired instruction bumps one of `buckets` hashed PC-histogram
     * counters per tile (Core::noteBbv).  `buckets` must be a power of
     * two in [2, 2^20]; 0 disables and clears.  Counts are plain
     * integers bumped in retire order, so the histograms are identical
     * under both engines and at any engineThreads — the property the
     * sampling subsystem's slice selection rests on.  Enablement and
     * counts are checkpointed (the chip.bbv section, format v4), so a
     * restored chip keeps profiling without re-wiring.
     */
    void enableBbv(std::uint32_t buckets);
    /** Buckets per tile (0 = disabled). */
    std::uint32_t bbvBuckets() const { return bbvBuckets_; }
    /** One tile's histogram (size bbvBuckets()). */
    const std::vector<std::uint64_t> &
    coreBbv(TileId t) const
    {
        return cores_[t]->bbvCounts();
    }

    // ---- checkpointing (DESIGN.md §10) -------------------------------

    /**
     * Serialize all chip state into/out of an archive, as a group of
     * "chip.*" sections.  Must be called between run() calls (never
     * mid-round; the ledger enforces no capture is in flight).  On
     * load, restored program images are owned by the chip and stay
     * alive for the lifetime of the restored threads.  The chip must
     * be constructed with the same PitonParams and ChipInstance; the
     * key identity knobs are fingerprinted and mismatches throw
     * ckpt::CheckpointError.
     */
    void serialize(ckpt::Archive &ar);

    /** Standalone chip-level checkpoint (System adds board/thermal/
     *  telemetry sections around the same chip payload). */
    std::vector<std::uint8_t> saveBytes();
    void restoreBytes(const std::vector<std::uint8_t> &bytes);
    void save(const std::string &path);
    void restore(const std::string &path);

  private:
    RunResult runLegacy(Cycle max_cycles);
    RunResult runFast(Cycle max_cycles);

    /**
     * Core-major run-ahead round over [start, lim): phase 1 lets each
     * core execute its core-local events in one contiguous slice
     * (charges captured per core), phase 2 executes the shared-memory
     * ops the slices paused at in global (cycle, core) order, phase 3
     * replays the captured charges in that same order so the ledger's
     * floating-point sums match in-order stepping bit for bit.
     * Returns the last cycle any core ticked (>= start).
     */
    Cycle runAheadRound(Cycle start, Cycle lim);

    /** Cycles per run-ahead round: big enough to amortize the round's
     *  setup and keep each core's slice long (hot state, trained
     *  branches), small enough that the charge logs stay cache
     *  resident (25 cores x 64 cycles x ~2 charges x 40 B ~ 200 KB). */
    static constexpr Cycle kRoundCycles = 64;

    /** Round length actually used: sharded rounds stretch with the
     *  thread count to amortize the gang fork/join.  Round size never
     *  affects results — rounds cover disjoint ascending cycle windows
     *  and every charge replays in global (cycle, core) order either
     *  way (DESIGN.md §12). */
    Cycle
    roundCycles() const
    {
        return engineThreads_ > 1
                   ? kRoundCycles * std::min<Cycle>(engineThreads_ * 2, 16)
                   : kRoundCycles;
    }

    config::PitonParams params_;
    chip::ChipInstance instance_;
    const power::EnergyModel &energy_;
    power::EnergyLedger ledger_;
    /** Per-tile energy accumulators (SoA; cores write through it). */
    power::TileEnergyLedger tileEnergy_;
    MainMemory memory_;
    std::unique_ptr<MemorySystem> mem_;
    std::vector<std::unique_ptr<Core>> cores_;
    /** Program images reconstructed by restore(); threads point into
     *  these until the caller loads something else. */
    std::vector<std::unique_ptr<isa::Program>> restoredPrograms_;
    Cycle now_ = 0;
    bool fastPath_ = true;
    /** Event scheduler: cached raw next-event cycle per core (kNever
     *  when idle/halted), refreshed from core return values. */
    std::vector<Cycle> nextAt_;
    /** Run-ahead round scratch (persistent to keep capacity): per-core
     *  captured-charge logs, replay cursors, and the pending
     *  shared-op min-heap keyed (cycle, core index). */
    std::vector<std::vector<power::CapturedCharge>> chargeLogs_;
    std::vector<std::size_t> logPos_;
    std::vector<std::pair<Cycle, std::size_t>> pauseHeap_;
    /** Sharded phase-3 merge scratch (persistent for capacity): the
     *  ping/pong arrays of the parallel stable tree merge and the
     *  per-level segment offsets (one entry per segment + sentinel). */
    std::vector<power::CapturedCharge> mergeA_;
    std::vector<power::CapturedCharge> mergeB_;
    std::vector<std::size_t> mergeOff_;
    std::vector<std::size_t> mergeOffNext_;
    /** Sharded-engine state: resolved shard count, the resident gang
     *  (created lazily at the first sharded round, sized to
     *  engineThreads_), per-core phase-1 scratch, and the round
     *  counter.  All of it is speed-only — never checkpointed; the
     *  scratch is reset on restore. */
    unsigned engineThreads_ = 1;
    std::uint32_t bbvBuckets_ = 0;
    std::unique_ptr<WorkerGang> gang_;
    std::vector<Core::AheadResult> aheadResults_;
    std::vector<std::uint8_t> aheadRan_;
    std::uint64_t runAheadRounds_ = 0;
};

} // namespace piton::arch

#endif // PITON_ARCH_PITON_CHIP_HH
