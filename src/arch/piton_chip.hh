/**
 * @file
 * Top-level Piton chip model: 25 tiles (core + caches + NoC routers +
 * L2 slice), the shared memory system, and the cycle-driven run loop.
 *
 * Energy from micro-architectural events accumulates in the
 * EnergyLedger; time-proportional components (clock tree, leakage) are
 * computed analytically from elapsed cycles by the System layer (they
 * depend on temperature, which the board/thermal models own).
 */

#ifndef PITON_ARCH_PITON_CHIP_HH
#define PITON_ARCH_PITON_CHIP_HH

#include <array>
#include <memory>
#include <vector>

#include "arch/core.hh"
#include "arch/mem_system.hh"
#include "arch/memory.hh"
#include "chip/chip_instance.hh"
#include "common/types.hh"
#include "config/piton_params.hh"
#include "power/energy_model.hh"

namespace piton::arch
{

class PitonChip
{
  public:
    PitonChip(const config::PitonParams &params,
              const chip::ChipInstance &instance,
              const power::EnergyModel &energy,
              std::uint64_t seed = 0xBEEF);

    const config::PitonParams &params() const { return params_; }
    const chip::ChipInstance &instance() const { return instance_; }

    MainMemory &memory() { return memory_; }
    MemorySystem &memSystem() { return *mem_; }
    Core &core(TileId t) { return *cores_[t]; }
    const Core &core(TileId t) const { return *cores_[t]; }

    /** Load a program onto (tile, thread). */
    void loadProgram(TileId tile, ThreadId tid, const isa::Program *program,
                     const std::vector<std::pair<int, RegVal>> &init = {});

    struct RunResult
    {
        Cycle cyclesElapsed = 0;
        bool allHalted = false;
    };

    /** Advance until `max_cycles` more cycles elapse or all loaded
     *  threads halt, whichever is first. */
    RunResult run(Cycle max_cycles);

    Cycle now() const { return now_; }

    const power::EnergyLedger &ledger() const { return ledger_; }
    power::EnergyLedger &ledger() { return ledger_; }

    /** Sum of instructions executed by every thread. */
    std::uint64_t totalInsts() const;

    /** Chip-wide retired-instruction counts per energy class. */
    std::array<std::uint64_t, static_cast<std::size_t>(
                                  isa::InstClass::NumClasses)>
    classCounts() const;

    /** Enable/disable Execution Drafting on every core. */
    void setExecDrafting(bool enabled);

    /** Install a per-instruction trace hook on every core. */
    void setTraceHook(Core::InstTraceHook hook);
    /** Chip-wide drafted-instruction count. */
    std::uint64_t draftedInsts() const;

    /** Number of threads currently in the Ready state. */
    std::uint32_t activeThreads() const;

    /** Per-tile cumulative core-local energy (J, VDD+VCS): the
     *  tile-resolved snapshot the telemetry subsystem diffs per
     *  sample window (see Core::coreEnergy for what it covers). */
    std::vector<double> tileCoreEnergyJ() const;

    /** Per-tile cumulative retired-instruction counts. */
    std::vector<std::uint64_t> tileInsts() const;

  private:
    config::PitonParams params_;
    chip::ChipInstance instance_;
    const power::EnergyModel &energy_;
    power::EnergyLedger ledger_;
    MainMemory memory_;
    std::unique_ptr<MemorySystem> mem_;
    std::vector<std::unique_ptr<Core>> cores_;
    Cycle now_ = 0;
};

} // namespace piton::arch

#endif // PITON_ARCH_PITON_CHIP_HH
