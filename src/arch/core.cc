#include "arch/core.hh"

#include <algorithm>

#include "common/logging.hh"

namespace piton::arch
{

Core::Core(TileId tile, const config::PitonParams &params,
           MemorySystem &mem, const power::EnergyModel &energy,
           power::EnergyLedger &ledger, double dyn_factor)
    : tile_(tile), params_(params), mem_(mem), energy_(energy),
      ledger_(ledger), dynFactor_(dyn_factor)
{
    threads_.resize(params_.threadsPerCore);
    lastIssue_.resize(params_.threadsPerCore, {nullptr, 0});
}

void
Core::loadProgram(ThreadId tid, const isa::Program *program,
                  const std::vector<std::pair<int, RegVal>> &init_regs)
{
    piton_assert(tid < threads_.size(), "thread id %u out of range", tid);
    piton_assert(program && !program->empty(), "empty program");
    ThreadState &t = threads_[tid];
    t = ThreadState{};
    t.program = program;
    t.status = ThreadStatus::Ready;
    for (const auto &[reg, val] : init_regs) {
        piton_assert(reg > 0 && reg < static_cast<int>(isa::kNumIntRegs),
                     "bad init register %d", reg);
        t.regs[static_cast<std::size_t>(reg)] = val;
    }
}

void
Core::charge(power::Category c, const power::RailEnergy &e)
{
    ledger_.add(c, e);
    coreEnergy_ += e;
}

void
Core::chargeExec(isa::InstClass cls, RegVal rs1, RegVal rs2)
{
    const auto activity = power::EnergyModel::operandActivity(rs1, rs2);
    double scale = dynFactor_;
    if (draftActive_) {
        // Execution Drafting: the duplicated front-end (fetch/decode)
        // work of the drafted instruction is saved.
        scale *= 1.0 - energy_.params().execDraftFrontEndFrac;
    }
    charge(power::Category::Exec,
           energy_.instructionEnergy(cls, activity).scaled(scale));
}

bool
Core::draftCheck(ThreadId tid, const ThreadState &t)
{
    if (!execDrafting_ || threads_.size() < 2)
        return false;
    // Drafted when the sibling thread's last issued instruction is the
    // same static instruction (same program, same pc).
    const ThreadId sibling = (tid + 1) % threads_.size();
    const auto &[prog, pc] = lastIssue_[sibling];
    return prog == t.program && pc == t.pc;
}

void
Core::drainStoreBuffer(Cycle now)
{
    while (!storeBuffer_.empty() && storeBuffer_.front() <= now)
        storeBuffer_.erase(storeBuffer_.begin());
}

std::size_t
Core::storeBufferDepth(Cycle now) const
{
    std::size_t depth = 0;
    for (const Cycle c : storeBuffer_)
        depth += (c > now);
    return depth;
}

bool
Core::allThreadsDone() const
{
    for (const auto &t : threads_) {
        if (t.status == ThreadStatus::Ready)
            return false;
    }
    return true;
}

std::uint64_t
Core::totalInsts() const
{
    std::uint64_t n = 0;
    for (const auto &t : threads_)
        n += t.instsExecuted;
    return n;
}

Cycle
Core::nextEventCycle(Cycle now) const
{
    Cycle next = kNever;
    for (const auto &t : threads_) {
        if (t.status != ThreadStatus::Ready)
            continue;
        next = std::min(next, std::max(t.readyAt, now));
    }
    return next;
}

bool
Core::tick(Cycle now)
{
    drainStoreBuffer(now);

    // Round-robin thread selection starting after the last issuer, so
    // two ready threads alternate cycle by cycle (fine-grained MT).
    // Under Execution Drafting the selector switches to ExecD's MinPC
    // policy: the ready thread furthest behind in the (shared) program
    // issues first, pulling similar threads into lockstep so their
    // instructions draft.
    const auto n = static_cast<std::uint32_t>(threads_.size());
    std::uint32_t pick = n; // invalid
    if (execDrafting_) {
        for (std::uint32_t tid = 0; tid < n; ++tid) {
            ThreadState &t = threads_[tid];
            if (t.status != ThreadStatus::Ready || t.readyAt > now)
                continue;
            if (pick == n)
                pick = tid;
            else if (threads_[pick].program == t.program
                     && t.pc < threads_[pick].pc)
                pick = tid;
            else if (threads_[pick].program == t.program
                     && t.pc == threads_[pick].pc && pick == lastIssued_)
                pick = tid; // tie: alternate issuers
        }
        if (pick != n) {
            ThreadState &t = threads_[pick];
            draftActive_ = draftCheck(pick, t);
            // A drafted instruction reuses the sibling's front-end
            // work: no context-switch energy is paid for it.
            if (pick != lastIssued_ && !draftActive_) {
                ++threadSwitches_;
                charge(power::Category::Exec,
                       energy_.threadSwitchEnergy().scaled(dynFactor_));
            }
            lastIssued_ = pick;
            const std::uint32_t pc_before = t.pc;
            const isa::Program *prog = t.program;
            const std::uint64_t insts_before = t.instsExecuted;
            issue(t, pick, now);
            if (t.instsExecuted != insts_before) {
                if (draftActive_)
                    ++draftedInsts_;
                lastIssue_[pick] = {prog, pc_before};
                if (trace_)
                    trace_(tile_, pick, now, prog->pcOf(pc_before),
                           prog->at(pc_before));
            }
            draftActive_ = false;
            return true;
        }
        return false;
    }
    for (std::uint32_t i = 1; i <= n; ++i) {
        const std::uint32_t tid = (lastIssued_ + i) % n;
        ThreadState &t = threads_[tid];
        if (t.status != ThreadStatus::Ready || t.readyAt > now)
            continue;
        // Hardware context switch: charged when the issue slot changes
        // thread (the FGMT overhead of Section IV-H2).
        if (tid != lastIssued_) {
            ++threadSwitches_;
            charge(power::Category::Exec,
                   energy_.threadSwitchEnergy().scaled(dynFactor_));
        }
        lastIssued_ = tid;
        draftActive_ = draftCheck(tid, t);
        const std::uint32_t pc_before = t.pc;
        const isa::Program *prog = t.program;
        const std::uint64_t insts_before = t.instsExecuted;
        issue(t, tid, now);
        // An I-fetch miss stalls without executing: don't record it.
        if (t.instsExecuted != insts_before) {
            if (draftActive_)
                ++draftedInsts_;
            lastIssue_[tid] = {prog, pc_before};
            if (trace_)
                trace_(tile_, tid, now, prog->pcOf(pc_before),
                       prog->at(pc_before));
        }
        draftActive_ = false;
        return true;
    }
    return false;
}

void
Core::issue(ThreadState &t, ThreadId tid, Cycle now)
{
    piton_assert(t.pc < t.program->size(),
                 "pc %u fell off the end of the program (size %u); "
                 "programs must loop or halt",
                 t.pc, t.program->size());

    // Instruction fetch: an L1I miss stalls the thread and retries.
    const Addr pc_addr = t.program->pcOf(t.pc);
    const std::uint32_t fetch_extra = mem_.ifetch(tile_, pc_addr, now);
    if (fetch_extra > 0) {
        t.readyAt = now + fetch_extra;
        t.memStallCycles += fetch_extra;
        return;
    }

    const isa::Instruction &inst = t.program->at(t.pc);
    const isa::InstClass cls = isa::classOf(inst.op);

    // Source operand values (drive switching energy).
    const auto &srcs = inst.fp ? t.fregs : t.regs;
    const RegVal rs1 = srcs[inst.rs1];
    const RegVal rs2 = inst.useImm ? static_cast<RegVal>(inst.imm)
                                   : srcs[inst.rs2];

    switch (inst.op) {
      case isa::Opcode::Ldx: {
        const Addr addr = t.regs[inst.rs1] + static_cast<Addr>(inst.imm);
        RegVal data = 0;
        const AccessOutcome out = mem_.load(tile_, addr, data, now);
        // Load energy switches with the returned data and the address
        // bus (the operand-value dependence of Fig. 11).
        chargeExec(cls, data, static_cast<RegVal>(addr));
        if (inst.rd != 0)
            t.regs[inst.rd] = data;
        ++t.classCounts[static_cast<std::size_t>(cls)];
        if (out.level != HitLevel::L1) {
            ++t.loadRollbacks;
            t.memStallCycles += out.latency - lat_.loadL1Hit;
        }
        t.readyAt = now + out.latency;
        ++t.instsExecuted;
        ++t.pc;
        return;
      }
      case isa::Opcode::Stx: {
        drainStoreBuffer(now);
        if (storeBuffer_.size() >= params_.storeBufferEntries) {
            // Speculative issue found the buffer full: roll back this
            // thread and replay the store once a slot frees.
            ++t.storeRollbacks;
            charge(power::Category::Rollback,
                   energy_.rollbackEnergy().scaled(dynFactor_));
            t.readyAt = storeBuffer_.front();
            return; // pc unchanged: the store re-executes
        }
        const Addr addr = t.regs[inst.rs1] + static_cast<Addr>(inst.imm);
        const RegVal data = t.regs[inst.rd];
        chargeExec(cls, data, static_cast<RegVal>(addr));
        const AccessOutcome out = mem_.store(tile_, addr, data, now);
        // Stores drain serially: one per store latency.
        const Cycle start = std::max(now, lastStoreDrain_);
        const Cycle done = start + out.latency;
        storeBuffer_.push_back(done);
        lastStoreDrain_ = done;
        // The thread itself continues; later instructions bypass the
        // buffered store.
        ++t.classCounts[static_cast<std::size_t>(cls)];
        t.readyAt = now + 1;
        ++t.instsExecuted;
        ++t.pc;
        return;
      }
      case isa::Opcode::Casx: {
        const Addr addr = t.regs[inst.rs1];
        chargeExec(cls, t.regs[inst.rs2], t.regs[inst.rd]);
        RegVal old = 0;
        const AccessOutcome out = mem_.atomicCas(
            tile_, addr, t.regs[inst.rs2], t.regs[inst.rd], old, now);
        if (inst.rd != 0)
            t.regs[inst.rd] = old;
        ++t.classCounts[static_cast<std::size_t>(cls)];
        t.memStallCycles += out.latency;
        t.readyAt = now + out.latency;
        ++t.instsExecuted;
        ++t.pc;
        return;
      }
      case isa::Opcode::Beq:
      case isa::Opcode::Bne:
      case isa::Opcode::Bg:
      case isa::Opcode::Bl:
      case isa::Opcode::Ba: {
        chargeExec(cls, t.cc.zero, t.cc.negative);
        const bool taken = isa::branchTaken(inst.op, t.cc);
        t.pc = taken ? inst.target : t.pc + 1;
        ++t.classCounts[static_cast<std::size_t>(cls)];
        t.readyAt = now + lat_.latencyOf(cls);
        ++t.instsExecuted;
        return;
      }
      case isa::Opcode::Halt:
        t.status = ThreadStatus::Halted;
        ++t.classCounts[static_cast<std::size_t>(cls)];
        ++t.instsExecuted;
        return;
      default: {
        // ALU / FP / pseudo ops.
        chargeExec(cls, rs1, rs2);
        const RegVal hwid =
            static_cast<RegVal>(tile_) * params_.threadsPerCore + tid;
        const isa::AluResult res = isa::evalAlu(inst, rs1, rs2, hwid);
        // %r0 is hardwired zero; FP registers have no zero register.
        if (res.writesRd && (inst.fp || inst.rd != 0)) {
            auto &dsts = inst.fp ? t.fregs : t.regs;
            dsts[inst.rd] = res.value;
        }
        if (res.setsCc)
            t.cc = res.cc;
        ++t.classCounts[static_cast<std::size_t>(cls)];
        t.readyAt = now + lat_.latencyOf(cls);
        ++t.instsExecuted;
        ++t.pc;
        return;
      }
    }
}

} // namespace piton::arch
