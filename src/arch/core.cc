#include "arch/core.hh"

#include <algorithm>

#include "checkpoint/archive.hh"
#include "checkpoint/program_table.hh"
#include "common/logging.hh"

namespace piton::arch
{

Core::Core(TileId tile, const config::PitonParams &params,
           MemorySystem &mem, const power::EnergyModel &energy,
           power::EnergyLedger &ledger, power::TileEnergyLedger &tile_energy,
           double dyn_factor)
    : tile_(tile), params_(params), mem_(mem), energy_(energy),
      ledger_(ledger), tileEnergy_(tile_energy), dynFactor_(dyn_factor)
{
    threads_.resize(params_.threadsPerCore);
    lastIssue_.resize(params_.threadsPerCore, {nullptr, 0});
    piton_assert(params_.storeBufferEntries > 0,
                 "store buffer needs at least one entry");
    storeBuffer_.resize(params_.storeBufferEntries);
    hwidBase_ = static_cast<RegVal>(tile_) * params_.threadsPerCore;
    l1iLineMask_ = ~static_cast<Addr>(params_.l1i.lineBytes - 1);
}

void
Core::loadProgram(ThreadId tid, const isa::Program *program,
                  const std::vector<std::pair<int, RegVal>> &init_regs)
{
    piton_assert(tid < threads_.size(), "thread id %u out of range", tid);
    piton_assert(program && !program->empty(), "empty program");
    ThreadState &t = threads_[tid];
    t = ThreadState{};
    t.program = program;
    t.status = ThreadStatus::Ready;
    for (const auto &[reg, val] : init_regs) {
        piton_assert(reg > 0 && reg < static_cast<int>(isa::kNumIntRegs),
                     "bad init register %d", reg);
        t.regs[static_cast<std::size_t>(reg)] = val;
    }
}

bool
Core::draftCheck(ThreadId tid, const ThreadState &t)
{
    if (!execDrafting_ || threads_.size() < 2)
        return false;
    // Drafted when the sibling thread's last issued instruction is the
    // same static instruction (same program, same pc).
    const ThreadId sibling = (tid + 1) % threads_.size();
    const auto &[prog, pc] = lastIssue_[sibling];
    return prog == t.program && pc == t.pc;
}

void
Core::drainStoreBuffer(Cycle now)
{
    while (sbCount_ > 0 && storeBuffer_[sbHead_] <= now) {
        if (++sbHead_ == storeBuffer_.size())
            sbHead_ = 0;
        --sbCount_;
    }
}

std::size_t
Core::storeBufferDepth(Cycle now) const
{
    // Entries are sorted by completion cycle, so in-flight stores are
    // a suffix of the live ring contents.
    std::size_t depth = 0;
    std::size_t idx = sbHead_;
    for (std::uint32_t i = 0; i < sbCount_; ++i) {
        depth += (storeBuffer_[idx] > now);
        if (++idx == storeBuffer_.size())
            idx = 0;
    }
    return depth;
}

void
Core::enableBbv(std::uint32_t buckets)
{
    if (buckets == 0) {
        bbv_.clear();
        bbv_.shrink_to_fit();
        bbvShift_ = 0;
        bbvBuckets_ = 0;
        return;
    }
    // buckets == 1 would make bbvShift_ 64 (shift UB); there is no
    // reason to profile into a single bucket anyway.
    piton_assert(buckets >= 2 && buckets <= (1u << 20)
                     && (buckets & (buckets - 1)) == 0,
                 "BBV buckets must be a power of two in [2, 2^20], got %u",
                 buckets);
    std::uint32_t lg = 0;
    while ((1u << lg) != buckets)
        ++lg;
    bbvShift_ = 64 - lg;
    bbvBuckets_ = buckets;
    bbv_.assign(buckets, 0);
}

bool
Core::allThreadsDone() const
{
    for (const auto &t : threads_) {
        if (t.status == ThreadStatus::Ready)
            return false;
    }
    return true;
}

std::uint64_t
Core::totalInsts() const
{
    std::uint64_t n = 0;
    for (const auto &t : threads_)
        n += t.instsExecuted;
    return n;
}

bool
Core::sharedPick(const ThreadState &t) const
{
    // An out-of-range pc must reach issue()'s diagnostic in global
    // order, so treat it as shared rather than reading past the
    // predecoded stream here.
    if (t.pc >= t.program->size())
        return true;
    const isa::DecodedInst &d = t.program->decoded(t.pc);
    switch (d.kind) {
      case isa::IssueKind::Load:
      case isa::IssueKind::Store:
      case isa::IssueKind::Cas:
        return true;
      default:
        break;
    }
    // ALU/branch/halt: core-local iff the fetch stays in the tile's
    // own L1I (which no other tile ever touches — fills come only from
    // this tile's ifetch misses).  probe() leaves LRU untouched; the
    // actual tick applies the LRU update.
    const Addr fline = d.pc & l1iLineMask_;
    const CacheLine *cl = t.fetchRef;
    if (cl && t.fetchLine == fline && cl->tag == fline && cl->valid())
        return false;
    return !mem_.l1iResident(tile_, fline);
}

template <bool Ahead>
Core::TickOutcome
Core::tickImpl(Cycle now)
{
    drainStoreBuffer(now);

    // Round-robin thread selection starting after the last issuer, so
    // two ready threads alternate cycle by cycle (fine-grained MT).
    // Under Execution Drafting the selector switches to ExecD's MinPC
    // policy: the ready thread furthest behind in the (shared) program
    // issues first, pulling similar threads into lockstep so their
    // instructions draft.
    const auto n = static_cast<std::uint32_t>(threads_.size());
    std::uint32_t pick = n; // invalid
    if (execDrafting_) {
        for (std::uint32_t tid = 0; tid < n; ++tid) {
            const ThreadState &t = threads_[tid];
            if (t.status != ThreadStatus::Ready || t.readyAt > now)
                continue;
            if (pick == n)
                pick = tid;
            else if (threads_[pick].program == t.program
                     && t.pc < threads_[pick].pc)
                pick = tid;
            else if (threads_[pick].program == t.program
                     && t.pc == threads_[pick].pc && pick == lastIssued_)
                pick = tid; // tie: alternate issuers
        }
    } else {
        std::uint32_t tid = lastIssued_;
        for (std::uint32_t i = 0; i < n; ++i) {
            if (++tid >= n)
                tid = 0;
            const ThreadState &t = threads_[tid];
            if (t.status != ThreadStatus::Ready || t.readyAt > now)
                continue;
            pick = tid;
            break;
        }
    }
    if (pick == n)
        return TickOutcome::NoPick;

    ThreadState &t = threads_[pick];
    if constexpr (Ahead) {
        // Stop before anything observable happens: the resume re-picks
        // the same thread (nothing below mutates pick inputs) and pays
        // the switch charge then, exactly as the in-order path would.
        if (sharedPick(t))
            return TickOutcome::Paused;
    }

    // A drafted instruction reuses the sibling's front-end work: no
    // context-switch energy is paid for it.  (Without ExecD,
    // draftCheck is constant false and this is the plain FGMT
    // context-switch charge of Section IV-H2.)
    draftActive_ = draftCheck(pick, t);
    if (pick != lastIssued_ && !draftActive_) {
        ++threadSwitches_;
        charge(power::Category::Exec,
               energy_.threadSwitchEnergy().scaled(dynFactor_));
    }
    lastIssued_ = pick;
    const std::uint32_t pc_before = t.pc;
    const isa::Program *prog = t.program;
    const std::uint64_t insts_before = t.instsExecuted;
    issue(t, pick, now);
    // An I-fetch miss stalls without executing: don't record it.
    if (t.instsExecuted != insts_before) {
        // Draft-match history only feeds draftCheck, so it is
        // maintained only while ExecD is on (setExecDrafting clears it
        // on a mode change, so a later enable starts from a clean
        // slate instead of stale pre-drafting history).
        if (execDrafting_) {
            if (draftActive_)
                ++draftedInsts_;
            lastIssue_[pick] = {prog, pc_before};
        }
        if (trace_)
            trace_(tile_, pick, now, prog->pcOf(pc_before),
                   prog->at(pc_before));
        if (bbvShift_ != 0)
            noteBbv(pick, pc_before);
    }
    draftActive_ = false;
    return TickOutcome::Picked;
}

template Core::TickOutcome Core::tickImpl<false>(Cycle);
template Core::TickOutcome Core::tickImpl<true>(Cycle);

bool
Core::tick(Cycle now)
{
    // Duty-gated: no issue, and also no lazy store-buffer pruning — the
    // fast path never visits a gated core (nextEventCycle is kNever),
    // so the legacy path must not do bookkeeping here either.  The
    // drain is lazy/idempotent anyway; skipping it is invisible.
    if (dvfsGated_)
        return false;
    return tickImpl<false>(now) == TickOutcome::Picked;
}

Core::AheadResult
Core::runAhead(Cycle from, Cycle lim)
{
    // The burst loop assumes plain round-robin between two ready
    // threads and an empty store buffer; anything else takes the
    // generic per-cycle loop.
    if (!execDrafting_ && !trace_ && sbCount_ == 0 && threads_.size() == 2
        && threads_[0].status == ThreadStatus::Ready
        && threads_[1].status == ThreadStatus::Ready)
        return runAheadBurst(from, lim);
    return runAheadGeneric(from, lim);
}

Core::AheadResult
Core::runAheadGeneric(Cycle from, Cycle lim)
{
    AheadResult r;
    Cycle cur = from;
    for (;;) {
        capCycle_ = cur;
        if (tickImpl<true>(cur) == TickOutcome::Paused) {
            r.next = cur;
            r.paused = true;
            return r;
        }
        r.last = cur;
        r.ticked = true;
        const Cycle next = nextEventCycle(cur + 1);
        if (next == kNever || next >= lim) {
            r.next = next;
            return r;
        }
        cur = next;
    }
}

Core::AheadResult
Core::runAheadBurst(Cycle from, Cycle lim)
{
    AheadResult r;
    ThreadState *const th[2] = {&threads_[0], &threads_[1]};
    // Scaling the switch energy is deterministic, so hoisting it out
    // of the loop keeps the charged bits identical.
    const power::RailEnergy switch_e =
        energy_.threadSwitchEnergy().scaled(dynFactor_);
    Cycle cur = from;
    std::uint32_t last = lastIssued_;
    for (;;) {
        // Round-robin pick, in tickImpl's scan order: the sibling of
        // the last issuer first.  `cur` is always a cycle where at
        // least one thread is ready, so the fallback pick is ready.
        std::uint32_t pick = last ^ 1u;
        if (th[pick]->readyAt > cur)
            pick = last;
        ThreadState &t = *th[pick];

        // Exit to the generic loop for anything but a core-local
        // ALU/branch issue: tickImpl re-picks the same thread (nothing
        // below mutates its inputs before this point).
        if (t.pc >= t.program->size())
            break;
        const isa::DecodedInst &d = t.program->decoded(t.pc);
        switch (d.kind) {
          case isa::IssueKind::Alu:
          case isa::IssueKind::Branch:
            break;
          default:
            goto generic; // load/store/CAS (shared) or halt (rare)
        }
        {
            const Addr fline = d.pc & l1iLineMask_;
            CacheLine *const cl = t.fetchRef;
            const bool filter_hit = cl && t.fetchLine == fline
                                    && cl->tag == fline && cl->valid();
            if (!filter_hit && !mem_.l1iResident(tile_, fline))
                break; // I-fetch miss: a shared op

            // Committed to this issue: replicate tickImpl's per-cycle
            // charge order (thread switch, fetch, exec).
            const std::uint32_t pc_issue = t.pc;
            capCycle_ = cur;
            if (pick != last) {
                ++threadSwitches_;
                charge(power::Category::Exec, switch_e);
            }
            last = pick;

            if (filter_hit) [[likely]] {
                cl->lastUse = cur;
            } else {
                const std::uint32_t extra = mem_.ifetch(tile_, d.pc, cur);
                piton_assert(extra == 0,
                             "resident L1I line missed in ifetch");
                t.fetchLine = fline;
                t.fetchRef = mem_.l1iLine(tile_, fline);
            }

            const isa::InstClass cls = d.cls;
            if (d.kind == isa::IssueKind::Branch) {
                chargeExec(cls, t.cc.zero, t.cc.negative);
                const bool taken = isa::branchTaken(d.op, t.cc);
                t.pc = taken ? d.target : t.pc + 1;
            } else {
                const auto &srcs = d.fp ? t.fregs : t.regs;
                const RegVal rs1 = srcs[d.rs1];
                const RegVal rs2 = d.useImm ? static_cast<RegVal>(d.imm)
                                            : srcs[d.rs2];
                chargeExec(cls, rs1, rs2);
                const isa::AluResult res = isa::evalAluOp(
                    d.op, d.imm, rs1, rs2, hwidBase_ + pick);
                if (res.writesRd && (d.fp || d.rd != 0)) {
                    auto &dsts = d.fp ? t.fregs : t.regs;
                    dsts[d.rd] = res.value;
                }
                if (res.setsCc)
                    t.cc = res.cc;
                ++t.pc;
            }
            ++t.classCounts[static_cast<std::size_t>(cls)];
            t.readyAt = cur + d.latency;
            ++t.instsExecuted;
            if (bbvShift_ != 0)
                noteBbv(pick, pc_issue);

            r.last = cur;
            r.ticked = true;
            const Cycle next = std::max(
                cur + 1, std::min(th[0]->readyAt, th[1]->readyAt));
            if (next >= lim) {
                lastIssued_ = last;
                r.next = next;
                return r;
            }
            cur = next;
        }
    }
  generic:
    lastIssued_ = last;
    AheadResult g = runAheadGeneric(cur, lim);
    if (r.ticked && (!g.ticked || g.last < r.last))
        g.last = r.last;
    g.ticked = g.ticked || r.ticked;
    return g;
}

Core::AheadResult
Core::resumeShared(Cycle c, Cycle lim)
{
    // The shared op's core-side charges tag through capCycle_; its
    // memory-side charges go through the chip ledger's capture (phase 2
    // runs serially, so touching the shared ledger here is safe).  Both
    // streams land in this core's log, in charge order.
    capCycle_ = c;
    ledger_.setCaptureCycle(c);
    tickImpl<false>(c); // the pending shared-memory op
    const Cycle next = nextEventCycle(c + 1);
    if (next == kNever || next >= lim)
        return {next, c, false, true};
    AheadResult r = runAhead(next, lim);
    if (!r.ticked || r.last < c)
        r.last = c;
    r.ticked = true;
    return r;
}

void
Core::issue(ThreadState &t, ThreadId tid, Cycle now)
{
    piton_assert(t.pc < t.program->size(),
                 "pc %u fell off the end of the program (size %u); "
                 "programs must loop or halt",
                 t.pc, t.program->size());

    // Predecoded record: energy class, issue latency, PC, operand
    // fields, and dispatch group resolved once at Program construction.
    const isa::DecodedInst &d = t.program->decoded(t.pc);

    // Instruction fetch.  The per-thread MRU filter handles the
    // common same-line repeat fetch: revalidate the cached line and
    // apply the LRU touch the full lookup would.  Anything else (line
    // crossing, eviction, invalidation) takes the full L1I path; an
    // L1I miss stalls the thread and retries.
    const Addr fline = d.pc & l1iLineMask_;
    CacheLine *const cl = t.fetchRef;
    if (cl && t.fetchLine == fline && cl->tag == fline && cl->valid())
        [[likely]] {
        cl->lastUse = now;
    } else {
        const std::uint32_t fetch_extra = mem_.ifetch(tile_, d.pc, now);
        if (fetch_extra > 0) {
            t.readyAt = now + fetch_extra;
            t.memStallCycles += fetch_extra;
            return;
        }
        t.fetchLine = fline;
        t.fetchRef = mem_.l1iLine(tile_, fline);
    }

    const isa::InstClass cls = d.cls;

    switch (d.kind) {
      case isa::IssueKind::Load: {
        const Addr addr = t.regs[d.rs1] + static_cast<Addr>(d.imm);
        RegVal data = 0;
        const AccessOutcome out = mem_.load(tile_, addr, data, now);
        // Load energy switches with the returned data and the address
        // bus (the operand-value dependence of Fig. 11).
        chargeExec(cls, data, static_cast<RegVal>(addr));
        if (d.rd != 0)
            t.regs[d.rd] = data;
        ++t.classCounts[static_cast<std::size_t>(cls)];
        if (out.level != HitLevel::L1) {
            ++t.loadRollbacks;
            t.memStallCycles += out.latency - lat_.loadL1Hit;
        }
        t.readyAt = now + out.latency;
        ++t.instsExecuted;
        ++t.pc;
        return;
      }
      case isa::IssueKind::Store: {
        drainStoreBuffer(now);
        if (sbCount_ >= params_.storeBufferEntries) {
            // Speculative issue found the buffer full: roll back this
            // thread and replay the store once a slot frees.
            ++t.storeRollbacks;
            charge(power::Category::Rollback,
                   energy_.rollbackEnergy().scaled(dynFactor_));
            t.readyAt = storeBuffer_[sbHead_];
            return; // pc unchanged: the store re-executes
        }
        const Addr addr = t.regs[d.rs1] + static_cast<Addr>(d.imm);
        const RegVal data = t.regs[d.rd];
        chargeExec(cls, data, static_cast<RegVal>(addr));
        const AccessOutcome out = mem_.store(tile_, addr, data, now);
        // Stores drain serially: one per store latency.
        const Cycle start = std::max(now, lastStoreDrain_);
        const Cycle done = start + out.latency;
        std::size_t slot = sbHead_ + sbCount_;
        if (slot >= storeBuffer_.size())
            slot -= storeBuffer_.size();
        storeBuffer_[slot] = done;
        ++sbCount_;
        lastStoreDrain_ = done;
        // The thread itself continues; later instructions bypass the
        // buffered store.
        ++t.classCounts[static_cast<std::size_t>(cls)];
        t.readyAt = now + 1;
        ++t.instsExecuted;
        ++t.pc;
        return;
      }
      case isa::IssueKind::Cas: {
        const Addr addr = t.regs[d.rs1];
        chargeExec(cls, t.regs[d.rs2], t.regs[d.rd]);
        RegVal old = 0;
        const AccessOutcome out = mem_.atomicCas(
            tile_, addr, t.regs[d.rs2], t.regs[d.rd], old, now);
        if (d.rd != 0)
            t.regs[d.rd] = old;
        ++t.classCounts[static_cast<std::size_t>(cls)];
        t.memStallCycles += out.latency;
        t.readyAt = now + out.latency;
        ++t.instsExecuted;
        ++t.pc;
        return;
      }
      case isa::IssueKind::Branch: {
        chargeExec(cls, t.cc.zero, t.cc.negative);
        const bool taken = isa::branchTaken(d.op, t.cc);
        t.pc = taken ? d.target : t.pc + 1;
        ++t.classCounts[static_cast<std::size_t>(cls)];
        t.readyAt = now + d.latency;
        ++t.instsExecuted;
        return;
      }
      case isa::IssueKind::Halt:
        t.status = ThreadStatus::Halted;
        ++t.classCounts[static_cast<std::size_t>(cls)];
        ++t.instsExecuted;
        return;
      case isa::IssueKind::Alu:
      default: {
        // ALU / FP / pseudo ops.  Source operand values drive the
        // switching energy.
        const auto &srcs = d.fp ? t.fregs : t.regs;
        const RegVal rs1 = srcs[d.rs1];
        const RegVal rs2 = d.useImm ? static_cast<RegVal>(d.imm)
                                    : srcs[d.rs2];
        chargeExec(cls, rs1, rs2);
        const RegVal hwid = hwidBase_ + tid;
        const isa::AluResult res =
            isa::evalAluOp(d.op, d.imm, rs1, rs2, hwid);
        // %r0 is hardwired zero; FP registers have no zero register.
        if (res.writesRd && (d.fp || d.rd != 0)) {
            auto &dsts = d.fp ? t.fregs : t.regs;
            dsts[d.rd] = res.value;
        }
        if (res.setsCc)
            t.cc = res.cc;
        ++t.classCounts[static_cast<std::size_t>(cls)];
        t.readyAt = now + d.latency;
        ++t.instsExecuted;
        ++t.pc;
        return;
      }
    }
}

void
Core::serialize(ckpt::Archive &ar, const ckpt::ProgramTable &pt)
{
    ckpt::Archive::check(capLog_ == nullptr,
                         "core capture active at checkpoint");
    ar.ioExpect(static_cast<std::uint32_t>(threads_.size()),
                "threads per core");
    for (auto &t : threads_) {
        for (auto &r : t.regs)
            ar.io(r);
        for (auto &r : t.fregs)
            ar.io(r);
        ar.io(t.cc.zero);
        ar.io(t.cc.negative);
        pt.ioRef(ar, t.program);
        ar.io(t.pc);
        ckpt::Archive::check(
            t.program == nullptr || t.pc < t.program->size(),
            "thread pc out of range");
        ar.ioEnum(t.status, static_cast<ThreadStatus>(3));
        ckpt::Archive::check(
            t.status == ThreadStatus::Idle || t.program != nullptr,
            "non-idle thread without a program");
        ar.io(t.readyAt);
        ar.io(t.fetchLine);
        if (ar.loading()) {
            // Re-resolve the MRU fetch handle against the restored L1I
            // (the caller serializes MemorySystem first).  A resident
            // line yields the same filter hit the saved pointer would
            // have revalidated to; an absent one falls back to the full
            // lookup — exactly as a stale saved pointer would.
            t.fetchRef = (t.program != nullptr && t.fetchLine != ~Addr{0})
                             ? mem_.l1iLine(tile_, t.fetchLine)
                             : nullptr;
        }
        ar.io(t.instsExecuted);
        for (auto &c : t.classCounts)
            ar.io(c);
        ar.io(t.loadRollbacks);
        ar.io(t.storeRollbacks);
        ar.io(t.memStallCycles);
    }

    // The per-tile energy accumulator lives in the chip's SoA
    // TileEnergyLedger, serialized as its own chip.tile_energy section
    // (format v2); nothing per-core to write here.
    ar.io(lastIssued_);
    ckpt::Archive::check(lastIssued_ < threads_.size(),
                         "lastIssued out of range");
    ar.io(execDrafting_);
    ar.io(threadSwitches_);
    ar.io(draftedInsts_);
    for (auto &li : lastIssue_) {
        pt.ioRef(ar, li.first);
        ar.io(li.second);
    }
    if (ar.loading()) {
        draftActive_ = false; // transient within one tick
        // Captures are round-local scratch, never live at a checkpoint
        // (the ledger guard enforces that on save).
        capLog_ = nullptr;
        capBase_ = 0;
        capCycle_ = 0;
    }

    // Store buffer: live completion cycles only, oldest first (the
    // ring's head offset is not architectural state).
    std::uint32_t live = sbCount_;
    ar.io(live);
    ckpt::Archive::check(live <= storeBuffer_.size(),
                         "store buffer overflow");
    if (ar.loading()) {
        sbHead_ = 0;
        sbCount_ = live;
    }
    for (std::uint32_t i = 0; i < live; ++i) {
        Cycle &slot =
            ar.saving()
                ? storeBuffer_[(sbHead_ + i) % storeBuffer_.size()]
                : storeBuffer_[i];
        ar.io(slot);
    }
    ar.io(lastStoreDrain_);
}

} // namespace piton::arch
