/**
 * @file
 * Per-event energy model of the Piton chip.
 *
 * The model is the "silicon" of this reproduction: a table of per-event
 * energies (instruction execution with operand-dependent switching,
 * cache accesses, NoC router/link traversal, rollbacks, stalls, clock
 * tree, leakage) calibrated so that the paper's measurement methodology,
 * re-run against the simulator, lands on the published numbers.
 *
 * Calibration anchors (all from the paper):
 *  - Chip #2 static 389.3 mW and idle 2015.3 mW at 1.0 V / 1.05 V /
 *    500.05 MHz (Table V).
 *  - EPI: add ~1/3 of an L1-hit ldx (0.286 nJ); sdivx near 1 nJ; strong
 *    operand-value dependence (Fig. 11).
 *  - Memory energy ladder of Table VII.
 *  - NoC EPF slopes of Fig. 12 (NSW 3.6 ... FSW 16.7 pJ/hop).
 *
 * Dynamic events scale with V^2 from the 1.0 V / 1.05 V reference;
 * leakage scales exponentially with voltage and temperature.
 */

#ifndef PITON_POWER_ENERGY_MODEL_HH
#define PITON_POWER_ENERGY_MODEL_HH

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "isa/instruction.hh"
#include "power/rails.hh"

namespace piton::power
{

/** Energy accounting categories for chip-level breakdowns. */
enum class Category : std::size_t
{
    Exec,      ///< core datapath + RF + L1 access for the instruction itself
    CacheL15,  ///< L1.5 accesses beyond the L1
    CacheL2,   ///< L2 slice + directory accesses
    Noc,       ///< router and link energy
    ChipBridge,///< off-chip serialization logic
    Rollback,  ///< thread rollback/replay events
    Stall,     ///< active-but-waiting cycles above the clock-tree floor
    OffChip,   ///< per-L2-miss off-chip excursion (see DESIGN.md)
    ClockTree, ///< idle dynamic power (clock distribution + idle FSMs)
    Leakage,   ///< static power integrated over time

    NumCategories
};

constexpr std::size_t kNumCategories =
    static_cast<std::size_t>(Category::NumCategories);

const char *categoryName(Category c);

/** Per-instruction-class execution energy at the reference voltages. */
struct ClassEnergy
{
    double minPj = 0.0;  ///< all-zero operands
    double maxPj = 0.0;  ///< all-one operands
    double vcsFrac = 0.15; ///< fraction drawn from VCS (RF/L1 arrays)
};

/** Calibration constants; defaults reproduce the paper's Chip #2. */
struct EnergyParams
{
    double refVddV = 1.00;
    double refVcsV = 1.05;
    double refTempC = 24.0;

    /** Indexed by isa::InstClass. */
    std::array<ClassEnergy, static_cast<std::size_t>(
                                isa::InstClass::NumClasses)>
        classEnergy{};

    // Cache-hierarchy access energies beyond the L1s (pJ, mostly VCS).
    double l15AccessPj = 110.0;
    double l2AccessPj = 650.0;
    double dirAccessPj = 60.0;
    double cacheVcsFrac = 0.75;

    // NoC (Fig. 12): per-flit-per-hop router energy plus per-toggled-bit
    // link charging energy, plus a small coupling surcharge when
    // adjacent wires switch in opposite directions (the FSWA pattern).
    double nocRouterFlitPj = 3.58;
    double nocLinkBitTogglePj = 0.23;
    double nocCouplingPj = 0.012;
    double nocVcsFrac = 0.05;

    // Chip bridge serialization per flit crossing the off-chip boundary.
    double chipBridgeFlitPj = 35.0;
    /** VIO pad energy per 32-bit off-chip beat (1.8 V rail). */
    double vioBeatPj = 180.0;

    // Speculation rollback (load miss / store-buffer-full replay).
    double rollbackPj = 200.0;
    // Active-stall energy per thread-cycle spent waiting on memory.
    double stallCyclePj = 8.0;
    // Off-chip miss excursion, calibrated to Table VII's L2-miss row.
    double offChipMissPj = 200'000.0;
    // Hardware thread-switch overhead charged when consecutive issue
    // slots belong to different threads.  The paper's Fig. 14 analysis
    // finds two-way FGMT's switching overhead comparable to the active
    // power of an extra core; this knob reproduces that.
    double threadSwitchPj = 60.0;

    // Execution Drafting (McKeown et al., MICRO'14): the Piton core
    // deduplicates front-end work when its two threads execute the
    // same instruction.  When a drafted instruction issues, this
    // fraction of its execution energy (fetch + decode) is saved.
    double execDraftFrontEndFrac = 0.30;

    // Clock tree / idle dynamic.  Chip #2 idle is 2015.3 mW with the
    // die at thermal equilibrium (~41 C, where leakage is ~549 mW), so
    // the clock tree contributes ~1466 mW at 500.05 MHz across 25
    // tiles = 117.3 pJ/tile/cycle.
    double idleCyclePjPerTile = 117.3;
    double idleVcsFrac = 0.12;

    // Leakage at reference voltage and temperature.  Chip #2 static
    // power is 389.3 mW measured with clocks grounded, i.e. with the
    // die barely above ambient (~24 C).  The VDD/VCS split follows
    // Fig. 16's rail breakdown (core ~1.77 W vs SRAM ~0.27 W during a
    // benchmark run).
    double staticVddW = 0.310;
    double staticVcsW = 0.079;
    double leakVoltSens = 4.5;  ///< 1/V, exp(kv * (V - Vref))
    double leakTempSens = 0.020; ///< 1/degC, exp(kt * (T - Tref))

    /** VIO standing power (gateway interface clocks, 1.8 V). */
    double vioIdleW = 0.045;
};

/** Factory with the per-class EPI table filled in (Fig. 11 targets). */
EnergyParams defaultEnergyParams();

/**
 * Per-event energy calculator.  The architecture simulator calls one
 * method per micro-architectural event; all voltage scaling is applied
 * here so sweeps only change the operating point.
 *
 * The per-instruction and fixed per-event energies are memoized: a
 * flat (class, operand-activity bucket) cache and one precomputed
 * RailEnergy per fixed event, rebuilt eagerly by setOperatingPoint.
 * Every cached entry is produced by the original formula, so cached
 * and uncached results are byte-identical (tests/test_power.cc).
 */
class EnergyModel
{
  public:
    explicit EnergyModel(EnergyParams params = defaultEnergyParams());

    const EnergyParams &params() const { return params_; }

    /** Set the operating point used for dynamic V^2 / leakage scaling. */
    void setOperatingPoint(double vdd_v, double vcs_v);
    double vddV() const { return vddV_; }
    double vcsV() const { return vcsV_; }

    /**
     * Switched-bit activity estimate for an instruction's operands:
     * Hamming weight of both 64-bit sources, in [0, 128].  The paper's
     * min/random/max operand experiment maps to 0 / ~64 / 128.
     */
    static std::uint32_t
    operandActivity(RegVal rs1, RegVal rs2)
    {
        return static_cast<std::uint32_t>(std::popcount(rs1)
                                          + std::popcount(rs2));
    }

    /** Distinct operand-activity values: popcounts in [0, 128]. */
    static constexpr std::uint32_t kActivityBuckets = 129;

    /** Execution energy (J) for one instruction, split across rails. */
    const RailEnergy &
    instructionEnergy(isa::InstClass cls, std::uint32_t activity_bits) const
    {
        return instCache_[static_cast<std::size_t>(cls) * kActivityBuckets
                          + activity_bits];
    }

    /** Reference path of instructionEnergy, bypassing the memo cache
     *  (the byte-identity guard in tests/test_power.cc compares the
     *  two). */
    RailEnergy instructionEnergyUncached(isa::InstClass cls,
                                         std::uint32_t activity_bits) const;

    const RailEnergy &l15AccessEnergy() const { return l15E_; }
    const RailEnergy &
    l2AccessEnergy(bool with_directory = true) const
    {
        return l2E_[with_directory ? 1 : 0];
    }

    /**
     * One flit traversing one router hop with the given link toggles.
     * @param opposing_pairs adjacent wire pairs switching in opposite
     *        directions (aggressor coupling, Fig. 12's FSWA case).
     */
    RailEnergy nocHopEnergy(std::uint32_t toggled_bits,
                            std::uint32_t opposing_pairs = 0) const;

    /** Opposing-transition adjacency count between consecutive flits. */
    static std::uint32_t opposingPairs(RegVal prev, RegVal cur);

    const RailEnergy &chipBridgeFlitEnergy() const { return chipBridgeE_; }
    /** Off-chip pad energy for one 32-bit beat (VIO rail). */
    const RailEnergy &vioBeatEnergy() const { return vioBeatE_; }

    const RailEnergy &rollbackEnergy() const { return rollbackE_; }
    const RailEnergy &stallCycleEnergy() const { return stallE_; }
    const RailEnergy &offChipMissEnergy() const { return offChipMissE_; }
    const RailEnergy &threadSwitchEnergy() const { return threadSwitchE_; }

    /** Clock-tree (idle) dynamic energy for one cycle of one tile. */
    const RailEnergy &idleCycleEnergy() const { return idleE_; }

    /** Leakage power (W) per rail at the operating point and given die
     *  temperature; leak_factor is the chip's process-variation knob. */
    RailEnergy leakagePowerW(double temp_c, double leak_factor = 1.0) const;

    /** Total chip idle power (W): clock tree + leakage, for quick
     *  closed-form checks (tests, V/f sweeps). */
    double idlePowerW(double freq_hz, std::uint32_t tiles, double temp_c,
                      double leak_factor = 1.0) const;

    /** Dynamic V^2 scale factor for a VDD-rail event. */
    double dynScaleVdd() const { return dynVdd_; }
    double dynScaleVcs() const { return dynVcs_; }

  private:
    /** Recompute every memoized event energy (operating-point change). */
    void rebuildCaches();

    EnergyParams params_;
    double vddV_;
    double vcsV_;
    double dynVdd_ = 1.0;
    double dynVcs_ = 1.0;

    /** Flat (class, activity-bucket) memo of instructionEnergy. */
    std::array<RailEnergy,
               static_cast<std::size_t>(isa::InstClass::NumClasses)
                   * kActivityBuckets>
        instCache_{};
    RailEnergy l15E_;
    std::array<RailEnergy, 2> l2E_; ///< [0] without, [1] with directory
    RailEnergy chipBridgeE_;
    RailEnergy vioBeatE_;
    RailEnergy rollbackE_;
    RailEnergy stallE_;
    RailEnergy offChipMissE_;
    RailEnergy threadSwitchE_;
    RailEnergy idleE_;

    RailEnergy split(double pj, double vcs_frac) const;
};

/**
 * One charge diverted by an EnergyLedger capture (see beginCapture):
 * the cycle it belongs to (as an offset from the capture base, keeping
 * the entry at 32 bytes) plus the exact (category, energy) arguments
 * of the intercepted add().  Replaying the captures in (cycle, actor)
 * order reproduces the accumulator sums bit for bit, since each replay
 * performs the identical double additions in the identical order.
 */
struct CapturedCharge
{
    RailEnergy e;
    std::uint32_t cycleDelta = 0; ///< cycle - capture base
    std::uint8_t cat = 0;         ///< Category, plus kCapturedCoreBit
};
static_assert(sizeof(CapturedCharge) == 32,
              "capture entries stream through caches on the hot path");

/**
 * Tag bit in CapturedCharge::cat: the charge also belongs to the
 * issuing core's per-tile accumulator (Core::coreEnergy).  Deferring
 * that side sum to replay keeps two serial FP adds off the issue loop;
 * the per-tile accumulator only ever receives its own core's charges,
 * whose relative order the per-core log preserves, so the deferred
 * adds produce bit-identical sums.
 */
inline constexpr std::uint8_t kCapturedCoreBit = 0x80;
static_assert(static_cast<std::size_t>(Category::NumCategories)
                  <= kCapturedCoreBit,
              "category must fit beside the core tag bit");

/**
 * Per-tile energy accumulators in structure-of-arrays layout: one
 * densely packed double array per rail, indexed by tile.  The sharded
 * replay walks one tile's log at a time, touching three adjacent
 * scalars instead of a RailEnergy embedded in each Core (whose
 * neighbours in memory are the core's thread state — a cache line the
 * replay has no other use for).  Each slot accumulates exactly the
 * per-rail double chains Core's old `coreEnergy_ += e` performed, so
 * sums are bit-identical to the AoS layout.
 */
class TileEnergyLedger
{
  public:
    void
    resize(std::size_t tiles)
    {
        vdd_.assign(tiles, 0.0);
        vcs_.assign(tiles, 0.0);
        vio_.assign(tiles, 0.0);
    }

    std::size_t size() const { return vdd_.size(); }

    void
    add(std::size_t tile, const RailEnergy &e)
    {
        vdd_[tile] += e.get(Rail::Vdd);
        vcs_[tile] += e.get(Rail::Vcs);
        vio_[tile] += e.get(Rail::Vio);
    }

    /** Reassembled per-tile total (telemetry-facing AoS view). */
    RailEnergy
    at(std::size_t tile) const
    {
        RailEnergy e;
        e.add(Rail::Vdd, vdd_[tile]);
        e.add(Rail::Vcs, vcs_[tile]);
        e.add(Rail::Vio, vio_[tile]);
        return e;
    }

    /** VDD + VCS, the per-tile slice the paper's EPI figures report. */
    double
    onChipCoreAndSramJ(std::size_t tile) const
    {
        return vdd_[tile] + vcs_[tile];
    }

    void
    reset()
    {
        std::fill(vdd_.begin(), vdd_.end(), 0.0);
        std::fill(vcs_.begin(), vcs_.end(), 0.0);
        std::fill(vio_.begin(), vio_.end(), 0.0);
    }

    /** Checkpoint hook: raw per-rail accumulator bits, tile-major
     *  within each rail.  The tile count is construction-time state
     *  (fingerprinted in chip.meta), so only the payload is written. */
    template <typename Ar>
    void
    serialize(Ar &ar)
    {
        for (auto &v : vdd_)
            ar.io(v);
        for (auto &v : vcs_)
            ar.io(v);
        for (auto &v : vio_)
            ar.io(v);
    }

  private:
    std::vector<double> vdd_;
    std::vector<double> vcs_;
    std::vector<double> vio_;
};

/** Per-category, per-rail energy accumulator. */
class EnergyLedger
{
  public:
    void
    add(Category c, const RailEnergy &e)
    {
        if (capture_) {
            capture_->push_back(
                {e, static_cast<std::uint32_t>(captureCycle_ - captureBase_),
                 static_cast<std::uint8_t>(c)});
            return;
        }
        byCat_[static_cast<std::size_t>(c)] += e;
        total_ += e;
    }

    /**
     * add() for charges that also feed the issuing core's per-tile
     * accumulator.  Returns true when the charge was captured — the
     * caller must then *not* accumulate its per-tile share (replay
     * applies it, see kCapturedCoreBit); false means the charge was
     * accumulated directly and the caller adds its share as usual.
     */
    bool
    addCore(Category c, const RailEnergy &e)
    {
        if (capture_) {
            capture_->push_back(
                {e, static_cast<std::uint32_t>(captureCycle_ - captureBase_),
                 static_cast<std::uint8_t>(
                     static_cast<std::uint8_t>(c) | kCapturedCoreBit)});
            return true;
        }
        byCat_[static_cast<std::size_t>(c)] += e;
        total_ += e;
        return false;
    }

    /**
     * Divert subsequent add() calls into `log` instead of accumulating.
     * The chip's run-ahead scheduler uses this to let cores execute
     * out of global cycle order while the ledger's floating-point add
     * order — which is observable through the non-associative sums —
     * is reconstructed by replaying the logs in (cycle, core) order.
     * Capture stays active until endCapture(); entries are tagged
     * relative to `base` with the cycle the executing core last set
     * via setCaptureCycle().
     */
    void
    beginCapture(std::vector<CapturedCharge> *log, Cycle base)
    {
        capture_ = log;
        captureBase_ = base;
    }
    void setCaptureCycle(Cycle c) { captureCycle_ = c; }
    void endCapture() { capture_ = nullptr; }
    bool capturing() const { return capture_ != nullptr; }

    /**
     * Replay a round's capture logs cycle-major, actor-minor — the
     * exact add order in-order stepping would have used, so the
     * accumulator sums come out bit-identical.  `logs` is one sorted
     * log per actor (ascending cycleDelta); ties replay in actor
     * order.  `pos` is scratch, resized and reset here.  Entries
     * tagged kCapturedCoreBit are also handed to `coreSink(actor, e)`
     * for the actor's own accumulator.
     *
     * Defined inline so the running total stays in registers across
     * the whole walk instead of round-tripping through memory on
     * every entry (the walk is the fast path's second-hottest loop).
     */
    template <typename Logs, typename CoreSink>
    void
    replayCaptures(const Logs &logs, std::vector<std::size_t> &pos,
                   CoreSink &&coreSink)
    {
        const std::size_t n = logs.size();
        pos.assign(n, 0);
        RailEnergy tot = total_; // register-resident chain
        constexpr std::uint32_t kNoDelta = ~std::uint32_t{0};
        std::uint32_t d = 0;
        for (;;) {
            std::uint32_t next_d = kNoDelta;
            for (std::size_t i = 0; i < n; ++i) {
                const auto &log = logs[i];
                std::size_t &p = pos[i];
                while (p < log.size() && log[p].cycleDelta == d) {
                    const std::uint8_t cat = log[p].cat;
                    const RailEnergy &e = log[p].e;
                    byCat_[cat & (kCapturedCoreBit - 1)] += e;
                    tot += e;
                    if (cat & kCapturedCoreBit)
                        coreSink(i, e);
                    ++p;
                }
                if (p < log.size() && log[p].cycleDelta < next_d)
                    next_d = log[p].cycleDelta;
            }
            if (next_d == kNoDelta)
                break;
            d = next_d;
        }
        total_ = tot;
    }

    /**
     * The category/total half of replayCaptures only: the per-actor
     * kCapturedCoreBit sums are left for the caller to apply from the
     * same logs (the sharded engine computes them in parallel while
     * this serial merge runs — each actor's accumulator depends only on
     * its own log's order, so splitting the two walks preserves every
     * FP add chain bit for bit; DESIGN.md §12).
     */
    template <typename Logs>
    void
    replayCategoryCaptures(const Logs &logs, std::vector<std::size_t> &pos)
    {
        replayCaptures(logs, pos,
                       [](std::size_t, const RailEnergy &) {});
    }

    /**
     * The category/total chain over a pre-merged charge array.  The
     * sharded engine merges the per-actor logs into one contiguous
     * (cycle, actor)-ordered array in parallel (a stable tree merge,
     * PitonChip::runAheadRound phase 3), so the serial residue shrinks
     * to this linear scan.  The walk performs the identical double
     * additions in the identical order as replayCategoryCaptures over
     * the unmerged logs — merging only changes *where* the entries
     * live, never the (cycle, actor) visit order — so the sums stay
     * bit-identical at every engine thread count.
     */
    void
    replayMerged(const std::vector<CapturedCharge> &merged)
    {
        RailEnergy tot = total_; // register-resident chain
        for (const CapturedCharge &cc : merged) {
            byCat_[cc.cat & (kCapturedCoreBit - 1)] += cc.e;
            tot += cc.e;
        }
        total_ = tot;
    }

    const RailEnergy &total() const { return total_; }
    const RailEnergy &
    category(Category c) const
    {
        return byCat_[static_cast<std::size_t>(c)];
    }

    void reset();

    /**
     * Checkpoint hook.  Captures are round-local scratch — begin/
     * endCapture bracket a single run-ahead round inside one run()
     * call — so a checkpoint taken between runs must never observe one
     * in flight; the guard enforces that on save, and restore re-arms
     * nothing.
     */
    template <typename Ar>
    void
    serialize(Ar &ar)
    {
        Ar::check(capture_ == nullptr,
                  "ledger capture active at checkpoint");
        for (auto &c : byCat_)
            c.serialize(ar);
        total_.serialize(ar);
        if (ar.loading()) {
            capture_ = nullptr;
            captureCycle_ = 0;
            captureBase_ = 0;
        }
    }

  private:
    std::array<RailEnergy, kNumCategories> byCat_{};
    RailEnergy total_;
    std::vector<CapturedCharge> *capture_ = nullptr;
    Cycle captureCycle_ = 0;
    Cycle captureBase_ = 0;
};

} // namespace piton::power

#endif // PITON_POWER_ENERGY_MODEL_HH
