#include "power/energy_model.hh"

#include <bit>
#include <cmath>

#include "common/logging.hh"

namespace piton::power
{

const char *
railName(Rail r)
{
    switch (r) {
      case Rail::Vdd: return "VDD";
      case Rail::Vcs: return "VCS";
      case Rail::Vio: return "VIO";
      default:
        piton_panic("bad rail");
    }
}

const char *
categoryName(Category c)
{
    switch (c) {
      case Category::Exec: return "exec";
      case Category::CacheL15: return "l1.5";
      case Category::CacheL2: return "l2";
      case Category::Noc: return "noc";
      case Category::ChipBridge: return "chip-bridge";
      case Category::Rollback: return "rollback";
      case Category::Stall: return "stall";
      case Category::OffChip: return "off-chip";
      case Category::ClockTree: return "clock-tree";
      case Category::Leakage: return "leakage";
      default:
        piton_panic("bad category");
    }
}

EnergyParams
defaultEnergyParams()
{
    EnergyParams p;
    using C = isa::InstClass;
    auto set = [&p](C c, double min_pj, double max_pj, double vcs_frac) {
        p.classEnergy[static_cast<std::size_t>(c)] =
            ClassEnergy{min_pj, max_pj, vcs_frac};
    };
    // (min, max) operand-activity energies in pJ; "random" operands land
    // at the midpoint.  Anchors: add(random) ~ ldx(L1 hit)/3 ~ 95 pJ;
    // sdivx near the 1 nJ top of Fig. 11; FP double > FP single;
    // fdivs < fdivd (50 vs 79 cycle latency).
    set(C::Nop, 65.0, 65.0, 0.10);
    set(C::IntSimple, 60.0, 130.0, 0.15);
    set(C::IntMul, 215.0, 525.0, 0.15);
    set(C::IntDiv, 640.0, 1060.0, 0.15);
    set(C::FpAddD, 380.0, 620.0, 0.20);
    set(C::FpMulD, 420.0, 710.0, 0.20);
    set(C::FpDivD, 620.0, 1020.0, 0.20);
    set(C::FpAddS, 315.0, 505.0, 0.20);
    set(C::FpMulS, 350.0, 570.0, 0.20);
    set(C::FpDivS, 460.0, 740.0, 0.20);
    // Memory ops switch on (data, address); addresses carry only a few
    // set bits, so the effective activity tops out near 70/128 — the
    // (min, max) range is widened so the observable spread matches the
    // figure.  The tables sit slightly below the paper's reported EPI
    // because the measurement methodology itself adds the leakage of
    // the warmer die during the test (see EXPERIMENTS.md).
    set(C::Load, 200.0, 380.0, 0.45);
    set(C::Store, 210.0, 390.0, 0.45);
    set(C::Atomic, 240.0, 420.0, 0.45);
    set(C::Branch, 140.0, 160.0, 0.12);
    set(C::Halt, 0.0, 0.0, 0.0);
    return p;
}

EnergyModel::EnergyModel(EnergyParams params)
    : params_(params), vddV_(params.refVddV), vcsV_(params.refVcsV)
{
    setOperatingPoint(params_.refVddV, params_.refVcsV);
}

void
EnergyModel::setOperatingPoint(double vdd_v, double vcs_v)
{
    piton_assert(vdd_v > 0.0 && vcs_v > 0.0, "non-positive supply voltage");
    vddV_ = vdd_v;
    vcsV_ = vcs_v;
    const double rv = vdd_v / params_.refVddV;
    const double rc = vcs_v / params_.refVcsV;
    dynVdd_ = rv * rv;
    dynVcs_ = rc * rc;
    rebuildCaches();
}

void
EnergyModel::rebuildCaches()
{
    // Each entry is the original formula evaluated once, so memoized
    // and uncached results stay byte-identical.
    for (std::size_t c = 0;
         c < static_cast<std::size_t>(isa::InstClass::NumClasses); ++c) {
        for (std::uint32_t a = 0; a < kActivityBuckets; ++a) {
            instCache_[c * kActivityBuckets + a] =
                instructionEnergyUncached(static_cast<isa::InstClass>(c), a);
        }
    }
    l15E_ = split(params_.l15AccessPj, params_.cacheVcsFrac);
    l2E_[0] = split(params_.l2AccessPj, params_.cacheVcsFrac);
    l2E_[1] =
        split(params_.l2AccessPj + params_.dirAccessPj, params_.cacheVcsFrac);
    chipBridgeE_ = split(params_.chipBridgeFlitPj, 0.05);
    vioBeatE_ = RailEnergy{};
    vioBeatE_.add(Rail::Vio, pjToJ(params_.vioBeatPj));
    rollbackE_ = split(params_.rollbackPj, 0.2);
    stallE_ = split(params_.stallCyclePj, 0.2);
    offChipMissE_ = split(params_.offChipMissPj, 0.3);
    // RF bank/context switching: partly SRAM (VCS).
    threadSwitchE_ = split(params_.threadSwitchPj, 0.35);
    idleE_ = split(params_.idleCyclePjPerTile, params_.idleVcsFrac);
}

RailEnergy
EnergyModel::split(double pj, double vcs_frac) const
{
    RailEnergy e;
    e.add(Rail::Vdd, pjToJ(pj) * (1.0 - vcs_frac) * dynVdd_);
    e.add(Rail::Vcs, pjToJ(pj) * vcs_frac * dynVcs_);
    return e;
}

RailEnergy
EnergyModel::instructionEnergyUncached(isa::InstClass cls,
                                       std::uint32_t activity_bits) const
{
    const auto &ce = params_.classEnergy[static_cast<std::size_t>(cls)];
    const double frac = static_cast<double>(activity_bits) / 128.0;
    const double pj = ce.minPj + (ce.maxPj - ce.minPj) * frac;
    return split(pj, ce.vcsFrac);
}

std::uint32_t
EnergyModel::opposingPairs(RegVal prev, RegVal cur)
{
    // A pair of adjacent wires couples when both toggle and their new
    // values differ (they moved in opposite directions).
    const RegVal toggled = prev ^ cur;
    const RegVal both = toggled & (toggled >> 1);
    const RegVal opposite = cur ^ (cur >> 1);
    return static_cast<std::uint32_t>(std::popcount(both & opposite));
}

RailEnergy
EnergyModel::nocHopEnergy(std::uint32_t toggled_bits,
                          std::uint32_t opposing_pairs) const
{
    const double pj = params_.nocRouterFlitPj
                      + params_.nocLinkBitTogglePj * toggled_bits
                      + params_.nocCouplingPj * opposing_pairs;
    return split(pj, params_.nocVcsFrac);
}

RailEnergy
EnergyModel::leakagePowerW(double temp_c, double leak_factor) const
{
    const double t_term =
        std::exp(params_.leakTempSens * (temp_c - params_.refTempC));
    RailEnergy p;
    p.add(Rail::Vdd,
          params_.staticVddW * leak_factor * t_term
              * std::exp(params_.leakVoltSens * (vddV_ - params_.refVddV)));
    p.add(Rail::Vcs,
          params_.staticVcsW * leak_factor * t_term
              * std::exp(params_.leakVoltSens * (vcsV_ - params_.refVcsV)));
    p.add(Rail::Vio, params_.vioIdleW);
    return p;
}

double
EnergyModel::idlePowerW(double freq_hz, std::uint32_t tiles, double temp_c,
                        double leak_factor) const
{
    const RailEnergy per_cycle = idleCycleEnergy();
    const RailEnergy leak = leakagePowerW(temp_c, leak_factor);
    return per_cycle.onChipCoreAndSram() * tiles * freq_hz
           + leak.onChipCoreAndSram();
}

void
EnergyLedger::reset()
{
    for (auto &e : byCat_)
        e.reset();
    total_.reset();
}

} // namespace piton::power
