/**
 * @file
 * Voltage-versus-frequency model (Fig. 9).
 *
 * Maximum operating frequency follows the alpha-power-law delay model,
 * fmax(V) = k * (V - Vt)^alpha / V, calibrated so a nominal chip runs
 * 514.33 MHz at 1.0 V and 285.74 MHz at 0.8 V (the paper's measured
 * anchors).  The gateway FPGA drives a discretized PLL reference clock,
 * so achievable core frequencies sit on a grid; quantize() models that,
 * and nextStep() gives the paper's error-bar semantics ("the next
 * discrete frequency step the chip was tested at and failed").
 */

#ifndef PITON_POWER_VF_MODEL_HH
#define PITON_POWER_VF_MODEL_HH

namespace piton::power
{

struct VfParams
{
    double alpha = 2.0;       ///< velocity-saturation exponent
    double vtV = 0.40;        ///< effective threshold voltage
    double kMhz = 1428.694;   ///< gain, calibrated at the 1.0 V anchor
    double freqStepMhz = 1.7859; ///< PLL reference quantization grid
    double minVddV = 0.60;    ///< below this the model is invalid
};

class VfModel
{
  public:
    explicit VfModel(VfParams params = VfParams{});

    const VfParams &params() const { return params_; }

    /**
     * Device-limited (non-thermally-limited) maximum frequency in MHz.
     * @param vdd_v         core supply at the transistor (post IR drop)
     * @param speed_factor  per-chip process-variation multiplier
     */
    double rawFmaxMhz(double vdd_v, double speed_factor = 1.0) const;

    /** Largest achievable grid frequency not exceeding f_mhz. */
    double quantizeMhz(double f_mhz) const;

    /** The next grid step above f_mhz (the failed test point). */
    double nextStepMhz(double f_mhz) const;

  private:
    VfParams params_;
};

} // namespace piton::power

#endif // PITON_POWER_VF_MODEL_HH
