/**
 * @file
 * Supply rails and per-rail energy accounting.
 *
 * Piton has three supplies: VDD (core logic, nominal 1.0 V), VCS (SRAM
 * arrays, nominal 1.05 V), and VIO (I/O, 1.8 V).  Every energy event in
 * the model is attributed to one rail, mirroring how the test board's
 * sense resistors separate the three currents.
 */

#ifndef PITON_POWER_RAILS_HH
#define PITON_POWER_RAILS_HH

#include <array>
#include <cstddef>

namespace piton::power
{

enum class Rail : std::size_t
{
    Vdd = 0, ///< core logic
    Vcs = 1, ///< SRAM arrays
    Vio = 2, ///< I/O pads
};

constexpr std::size_t kNumRails = 3;

/** Energy accumulated per rail, in joules. */
class RailEnergy
{
  public:
    void
    add(Rail r, double joules)
    {
        e_[static_cast<std::size_t>(r)] += joules;
    }

    double
    get(Rail r) const
    {
        return e_[static_cast<std::size_t>(r)];
    }

    /** VDD + VCS, the sum the paper's EPI measurements report. */
    double onChipCoreAndSram() const { return get(Rail::Vdd) + get(Rail::Vcs); }

    double total() const { return e_[0] + e_[1] + e_[2]; }

    RailEnergy &
    operator+=(const RailEnergy &o)
    {
        for (std::size_t i = 0; i < kNumRails; ++i)
            e_[i] += o.e_[i];
        return *this;
    }

    /** Copy with every rail multiplied by `factor` (process variation). */
    RailEnergy
    scaled(double factor) const
    {
        RailEnergy out = *this;
        for (auto &v : out.e_)
            v *= factor;
        return out;
    }

    RailEnergy
    operator+(const RailEnergy &o) const
    {
        RailEnergy out = *this;
        out += o;
        return out;
    }

    RailEnergy
    operator-(const RailEnergy &o) const
    {
        RailEnergy out = *this;
        for (std::size_t i = 0; i < kNumRails; ++i)
            out.e_[i] -= o.e_[i];
        return out;
    }

    void reset() { e_ = {}; }

    /** Checkpoint hook: the three accumulators as raw bit patterns
     *  (the determinism contract compares sums bit for bit). */
    template <typename Ar>
    void
    serialize(Ar &ar)
    {
        for (auto &v : e_)
            ar.io(v);
    }

  private:
    std::array<double, kNumRails> e_{};
};

const char *railName(Rail r);

} // namespace piton::power

#endif // PITON_POWER_RAILS_HH
