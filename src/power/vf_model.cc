#include "power/vf_model.hh"

#include <cmath>

#include "common/logging.hh"

namespace piton::power
{

VfModel::VfModel(VfParams params) : params_(params)
{
    piton_assert(params_.alpha > 0.0 && params_.kMhz > 0.0
                     && params_.freqStepMhz > 0.0,
                 "invalid VfParams");
}

double
VfModel::rawFmaxMhz(double vdd_v, double speed_factor) const
{
    piton_assert(vdd_v >= params_.minVddV,
                 "VDD %.3f V below model validity floor", vdd_v);
    const double overdrive = vdd_v - params_.vtV;
    if (overdrive <= 0.0)
        return 0.0;
    return speed_factor * params_.kMhz * std::pow(overdrive, params_.alpha)
           / vdd_v;
}

double
VfModel::quantizeMhz(double f_mhz) const
{
    // The epsilon keeps exact grid points (e.g. the 514.33 MHz anchor)
    // from flooring to the previous step through rounding error.
    const double steps = std::floor(f_mhz / params_.freqStepMhz + 1e-6);
    return steps * params_.freqStepMhz;
}

double
VfModel::nextStepMhz(double f_mhz) const
{
    return quantizeMhz(f_mhz) + params_.freqStepMhz;
}

} // namespace piton::power
