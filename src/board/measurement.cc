#include "board/measurement.hh"

namespace piton::board
{

PowerMeasurement
collectMeasurement(TestBoard &test_board, std::uint32_t samples,
                   const std::function<std::array<double, 3>()> &true_powers)
{
    PowerMeasurement m;
    for (std::uint32_t i = 0; i < samples; ++i) {
        const std::array<double, 3> p = true_powers();
        const RailSample vdd =
            test_board.sampleRail(power::Rail::Vdd, p[0]);
        const RailSample vcs =
            test_board.sampleRail(power::Rail::Vcs, p[1]);
        const RailSample vio =
            test_board.sampleRail(power::Rail::Vio, p[2]);
        m.vddW.add(vdd.powerW());
        m.vcsW.add(vcs.powerW());
        m.vioW.add(vio.powerW());
        m.onChipW.add(vdd.powerW() + vcs.powerW());
    }
    return m;
}

} // namespace piton::board
