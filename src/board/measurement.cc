#include "board/measurement.hh"

#include "common/logging.hh"
#include "telemetry/schema.hh"

namespace piton::board
{

PowerMeasurement
collectMeasurement(TestBoard &test_board, std::uint32_t samples,
                   const std::function<std::array<double, 3>()> &true_powers,
                   telemetry::TelemetryRecorder *telem, double t0_s,
                   double dt_s)
{
    namespace ts = telemetry::schema;
    std::size_t id_vdd = 0, id_vcs = 0, id_vio = 0, id_onchip = 0;
    if (telem) {
        piton_assert(dt_s > 0.0,
                     "telemetry-routed measurement needs a sample window");
        using telemetry::Downsample;
        using telemetry::Unit;
        id_vdd = telem->defineSeries(ts::kMeasuredVddW, Unit::Watts,
                                     Downsample::Mean);
        id_vcs = telem->defineSeries(ts::kMeasuredVcsW, Unit::Watts,
                                     Downsample::Mean);
        id_vio = telem->defineSeries(ts::kMeasuredVioW, Unit::Watts,
                                     Downsample::Mean);
        id_onchip = telem->defineSeries(ts::kMeasuredOnChipW, Unit::Watts,
                                        Downsample::Mean);
    }

    PowerMeasurement m;
    for (std::uint32_t i = 0; i < samples; ++i) {
        const std::array<double, 3> p = true_powers();
        const RailSample vdd =
            test_board.sampleRail(power::Rail::Vdd, p[0]);
        const RailSample vcs =
            test_board.sampleRail(power::Rail::Vcs, p[1]);
        const RailSample vio =
            test_board.sampleRail(power::Rail::Vio, p[2]);
        m.vddW.add(vdd.powerW());
        m.vcsW.add(vcs.powerW());
        m.vioW.add(vio.powerW());
        m.onChipW.add(vdd.powerW() + vcs.powerW());
        if (telem) {
            const double t = t0_s + i * dt_s;
            telem->record(id_vdd, t, dt_s, vdd.powerW());
            telem->record(id_vcs, t, dt_s, vcs.powerW());
            telem->record(id_vio, t, dt_s, vio.powerW());
            telem->record(id_onchip, t, dt_s,
                          vdd.powerW() + vcs.powerW());
        }
    }
    return m;
}

} // namespace piton::board
