#include "board/test_board.hh"

#include <cmath>

#include "common/logging.hh"

namespace piton::board
{

TestBoard::TestBoard(std::uint64_t noise_seed) : rng_(noise_seed)
{
    channels_[static_cast<std::size_t>(power::Rail::Vdd)].setpointV = 1.00;
    channels_[static_cast<std::size_t>(power::Rail::Vcs)].setpointV = 1.05;
    auto &vio = channels_[static_cast<std::size_t>(power::Rail::Vio)];
    vio.setpointV = 1.80;
    vio.socketResistanceOhm = 0.050;
}

SupplyChannel &
TestBoard::channel(power::Rail r)
{
    return channels_[static_cast<std::size_t>(r)];
}

const SupplyChannel &
TestBoard::channel(power::Rail r) const
{
    return channels_[static_cast<std::size_t>(r)];
}

void
TestBoard::setSupply(power::Rail r, double volts)
{
    piton_assert(volts > 0.0 && volts < 2.5, "supply setpoint %.2f V out of"
                 " the board's range", volts);
    channel(r).setpointV = volts;
}

double
TestBoard::socketVoltage(power::Rail r, double current_a) const
{
    const SupplyChannel &ch = channel(r);
    if (ch.remoteSense)
        return ch.setpointV; // the supply regulates at the sense point
    return ch.setpointV
           - current_a * (ch.cableResistanceOhm + ch.senseResistorOhm);
}

double
TestBoard::dieVoltage(power::Rail r, double current_a) const
{
    return socketVoltage(r, current_a)
           - current_a * channel(r).socketResistanceOhm;
}

RailSample
TestBoard::sampleRail(power::Rail r, double true_w)
{
    piton_assert(true_w >= 0.0, "negative rail power");
    // Solve for the true current at the socket voltage.
    const SupplyChannel &ch = channel(r);
    double v = ch.setpointV;
    double i = true_w / v;
    if (!ch.remoteSense) {
        v = socketVoltage(r, i); // one fixed-point step is plenty
        i = true_w / v;
    }

    auto quantize = [](double value, double lsb) {
        return std::round(value / lsb) * lsb;
    };
    RailSample s;
    s.voltageV = quantize(v + rng_.gaussian(0.0, monitor_.voltageNoiseV),
                          monitor_.voltageLsbV);
    s.currentA = quantize(i + rng_.gaussian(0.0, monitor_.currentNoiseA),
                          monitor_.currentLsbA);
    if (s.currentA < 0.0)
        s.currentA = 0.0;
    return s;
}

} // namespace piton::board
