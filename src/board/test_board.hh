/**
 * @file
 * The custom Piton test PCB (Section III-A).
 *
 * The board was designed specifically for power characterization:
 *  - each of the three supplies (VDD, VCS, VIO) can come from a bench
 *    power supply with remote voltage sense (compensating cable/board
 *    IR drop up to the socket pins);
 *  - sense resistors bridge split power planes so that only current
 *    delivered to the chip is measured;
 *  - I2C voltage monitors read the socket-pin voltage and the drop
 *    across each sense resistor, polled at ~17 Hz.
 *
 * The model reproduces the measurement error sources the paper
 * reports: monitor quantization, sampling noise, and the fact that the
 * recorded voltages exclude socket/wirebond/die IR drop (so the die
 * sees slightly less than the reported voltage).
 */

#ifndef PITON_BOARD_TEST_BOARD_HH
#define PITON_BOARD_TEST_BOARD_HH

#include <array>

#include "common/rng.hh"
#include "power/rails.hh"

namespace piton::board
{

struct SupplyChannel
{
    double setpointV = 1.0;
    bool benchSupply = true;   ///< bench supplies are used for all studies
    bool remoteSense = true;   ///< compensates drop up to the socket pins
    double cableResistanceOhm = 0.020; ///< matters only without remote sense
    double senseResistorOhm = 0.005;
    /** Socket + wirebond resistance between pins and die (not
     *  compensated; Section IV-C discusses the resulting IR drop). */
    double socketResistanceOhm = 0.030;
};

struct MonitorParams
{
    double pollHz = 17.0;       ///< monitor device limitation
    double voltageLsbV = 0.001; ///< 12-bit-class monitor quantization
    double currentLsbA = 0.001;
    double voltageNoiseV = 0.0001;
    double currentNoiseA = 0.0014;
};

/** One monitor sample of a rail. */
struct RailSample
{
    double voltageV = 0.0; ///< at the socket pins
    double currentA = 0.0;
    double powerW() const { return voltageV * currentA; }
};

class TestBoard
{
  public:
    explicit TestBoard(std::uint64_t noise_seed = 0x50C0);

    SupplyChannel &channel(power::Rail r);
    const SupplyChannel &channel(power::Rail r) const;
    MonitorParams &monitor() { return monitor_; }
    const MonitorParams &monitor() const { return monitor_; }

    /** Program a supply setpoint. */
    void setSupply(power::Rail r, double volts);

    /** True voltage at the socket pins while drawing `current_a`. */
    double socketVoltage(power::Rail r, double current_a) const;

    /** Voltage actually reaching the die (socket/wirebond IR drop). */
    double dieVoltage(power::Rail r, double current_a) const;

    /**
     * One I2C monitor sample of a rail drawing true power `true_w`.
     * Applies quantization and measurement noise.
     */
    RailSample sampleRail(power::Rail r, double true_w);

    /** Checkpoint hook: supply configuration, monitor parameters, and
     *  the measurement-noise RNG stream position (so a resumed run's
     *  monitor samples continue the identical noise sequence). */
    template <typename Ar>
    void
    serialize(Ar &ar)
    {
        for (auto &ch : channels_) {
            ar.io(ch.setpointV);
            ar.io(ch.benchSupply);
            ar.io(ch.remoteSense);
            ar.io(ch.cableResistanceOhm);
            ar.io(ch.senseResistorOhm);
            ar.io(ch.socketResistanceOhm);
        }
        ar.io(monitor_.pollHz);
        ar.io(monitor_.voltageLsbV);
        ar.io(monitor_.currentLsbA);
        ar.io(monitor_.voltageNoiseV);
        ar.io(monitor_.currentNoiseA);
        Rng::Snapshot snap = rng_.snapshot();
        for (auto &w : snap.s)
            ar.io(w);
        ar.io(snap.haveCached);
        ar.io(snap.cached);
        if (ar.loading())
            rng_.restore(snap);
    }

  private:
    std::array<SupplyChannel, power::kNumRails> channels_;
    MonitorParams monitor_;
    Rng rng_;
};

} // namespace piton::board

#endif // PITON_BOARD_TEST_BOARD_HH
