/**
 * @file
 * The paper's measurement protocol: record 128 voltage/current samples
 * from the I2C monitors (~7.5 s at 17 Hz) after the system reaches a
 * steady state, and report the average power with the standard
 * deviation of the samples as the error (Section III-A).
 */

#ifndef PITON_BOARD_MEASUREMENT_HH
#define PITON_BOARD_MEASUREMENT_HH

#include <array>
#include <functional>

#include "board/test_board.hh"
#include "common/stats.hh"
#include "power/rails.hh"
#include "telemetry/recorder.hh"

namespace piton::board
{

/** A completed measurement: per-rail and combined-on-chip statistics. */
struct PowerMeasurement
{
    RunningStats vddW;
    RunningStats vcsW;
    RunningStats vioW;
    /** Per-sample VDD+VCS sum — the quantity the EPI studies use. */
    RunningStats onChipW;

    double onChipMeanW() const { return onChipW.mean(); }
    double onChipStddevW() const { return onChipW.stddev(); }
};

/**
 * Collect `samples` monitor readings.  `true_powers` is invoked once
 * per sample and must return the true {VDD, VCS, VIO} rail powers in
 * watts for that sample window (advancing the simulation as a side
 * effect).
 *
 * When `telem` is non-null the monitor chain also records each noisy
 * per-rail reading into the shared telemetry schema (measured.*_w
 * series), so measured and true series land in the same store with
 * the same window semantics: sample i covers [t0 + i*dt, +dt).
 */
PowerMeasurement
collectMeasurement(TestBoard &test_board, std::uint32_t samples,
                   const std::function<std::array<double, 3>()> &true_powers,
                   telemetry::TelemetryRecorder *telem = nullptr,
                   double t0_s = 0.0, double dt_s = 0.0);

} // namespace piton::board

#endif // PITON_BOARD_MEASUREMENT_HH
