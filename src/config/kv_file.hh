/**
 * @file
 * Minimal key/value configuration files (scenario descriptions).
 *
 * Format, line by line:
 *   - `key = value` pairs; keys are [a-z0-9_.]+ (lowercased on parse),
 *     values are free text with surrounding whitespace trimmed;
 *   - `#` or `;` starts a comment (full line or after a value);
 *   - blank lines are ignored.
 *
 * Parsing is strict: a malformed line (no '=', empty key, bad key
 * character) throws KvError with the line number.  Typed accessors
 * (getDouble/getUint/getBool) throw on unparseable values, and the
 * consumed-key bookkeeping lets a schema reject unknown keys — a typo
 * in a scenario file is an error, never a silently-ignored setting.
 */

#ifndef PITON_CONFIG_KV_FILE_HH
#define PITON_CONFIG_KV_FILE_HH

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace piton::config
{

/** Thrown on malformed files, bad values, or unknown keys. */
class KvError : public std::runtime_error
{
  public:
    explicit KvError(const std::string &what) : std::runtime_error(what) {}
};

class KvFile
{
  public:
    /** Ordered (key, value) pairs as they appeared; duplicates keep
     *  file order and the *last* occurrence wins in lookups. */
    const std::vector<std::pair<std::string, std::string>> &
    entries() const
    {
        return entries_;
    }

    bool has(const std::string &key) const;

    /** Last value for `key`, or `def` when absent.  Marks the key
     *  consumed either way. */
    std::string get(const std::string &key, const std::string &def = {}) const;
    double getDouble(const std::string &key, double def) const;
    std::uint64_t getUint(const std::string &key, std::uint64_t def) const;
    /** Accepts true/false/yes/no/on/off/1/0. */
    bool getBool(const std::string &key, bool def) const;

    /**
     * Every key that was never touched by has()/get*() — call after a
     * schema has consumed everything it understands and treat a
     * non-empty result as an error (checkUnknownKeys does exactly
     * that).
     */
    std::vector<std::string> unconsumedKeys() const;
    /** Throw KvError listing any unconsumed keys. */
    void checkUnknownKeys(const std::string &context) const;

    /** Parser entry points (`source` names the file in errors). */
    static KvFile parseText(const std::string &text,
                            const std::string &source = "<memory>");
    static KvFile parseFile(const std::string &path);

  private:
    std::vector<std::pair<std::string, std::string>> entries_;
    std::string source_;
    /** Consumption marks, parallel to entries_ (lookup bookkeeping
     *  only — mutable so the accessors stay logically const). */
    mutable std::vector<bool> consumed_;
};

} // namespace piton::config

#endif // PITON_CONFIG_KV_FILE_HH
