#include "config/piton_params.hh"

#include <cstdlib>

#include "common/logging.hh"

namespace piton::config
{

SystemConfig
defaultSystemConfig()
{
    return SystemConfig{};
}

TileCoord
tileCoord(const PitonParams &p, TileId t)
{
    piton_assert(t < p.tileCount, "tile id %u out of range", t);
    return TileCoord{t % p.meshWidth, t / p.meshWidth};
}

TileId
tileIdAt(const PitonParams &p, std::uint32_t x, std::uint32_t y)
{
    piton_assert(x < p.meshWidth && y < p.meshHeight,
                 "tile coordinate (%u,%u) out of range", x, y);
    return y * p.meshWidth + x;
}

std::uint32_t
hopDistance(const PitonParams &p, TileId a, TileId b)
{
    const TileCoord ca = tileCoord(p, a);
    const TileCoord cb = tileCoord(p, b);
    const auto dx = static_cast<std::int64_t>(ca.x) - cb.x;
    const auto dy = static_cast<std::int64_t>(ca.y) - cb.y;
    return static_cast<std::uint32_t>(std::llabs(dx) + std::llabs(dy));
}

} // namespace piton::config
