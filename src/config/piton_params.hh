/**
 * @file
 * Architectural and measurement parameters of the Piton system.
 *
 * These structs are the single source of truth for the numbers in the
 * paper's Table I (Piton parameter summary), Table II (experimental
 * system frequencies), and Table III (default measurement parameters).
 * Every other subsystem (arch, power, board, perfmodel) consumes them
 * from here, so a parameter sweep only ever edits one place.
 */

#ifndef PITON_CONFIG_PITON_PARAMS_HH
#define PITON_CONFIG_PITON_PARAMS_HH

#include <cstdint>
#include <string>

#include "common/types.hh"

namespace piton::config
{

/** Geometry / capacity of one cache. */
struct CacheParams
{
    std::uint32_t sizeBytes;
    std::uint32_t associativity;
    std::uint32_t lineBytes;

    std::uint32_t numLines() const { return sizeBytes / lineBytes; }
    std::uint32_t numSets() const { return numLines() / associativity; }
};

/** Which address bits select the L2 slice ("home" tile) for a line. */
enum class LineToSliceMapping
{
    LowOrder,  ///< bits just above the line offset (default)
    MidOrder,  ///< middle address bits
    HighOrder, ///< high address bits
};

/** Table I: Piton parameter summary. */
struct PitonParams
{
    std::string process = "IBM 32nm SOI";
    double dieAreaMm2 = 36.0;            // 6mm x 6mm
    double dieEdgeMm = 6.0;
    std::uint64_t transistorCount = 460'000'000;
    std::string package = "208-pin QFP";

    double nominalVddV = 1.00;  ///< core logic supply
    double nominalVcsV = 1.05;  ///< SRAM supply
    double nominalVioV = 1.80;  ///< I/O supply

    std::uint32_t offChipInterfaceBits = 32; ///< each direction

    std::uint32_t meshWidth = 5;
    std::uint32_t meshHeight = 5;
    std::uint32_t tileCount = 25;
    std::uint32_t nocCount = 3;
    std::uint32_t nocWidthBits = 64; ///< each direction
    std::uint32_t coresPerTile = 1;
    std::uint32_t threadsPerCore = 2;
    std::uint32_t totalThreads = 50;

    std::string coreIsa = "SPARC V9";
    std::uint32_t corePipelineDepth = 6;
    std::uint32_t storeBufferEntries = 8;

    CacheParams l1i{16 * 1024, 4, 32};
    CacheParams l1d{8 * 1024, 4, 16};
    CacheParams l15{8 * 1024, 4, 16};
    CacheParams l2Slice{64 * 1024, 4, 64};

    std::string coherenceProtocol = "Directory-based MESI";
    std::string coherencePoint = "L2 Cache";

    /** Tile pitch (center-to-center NoC routing distance), Section IV-G. */
    double tilePitchXMm = 1.14452;
    double tilePitchYMm = 1.053;

    LineToSliceMapping sliceMapping = LineToSliceMapping::LowOrder;

    /** Aggregate L2 capacity across the chip. */
    std::uint64_t
    totalL2Bytes() const
    {
        return static_cast<std::uint64_t>(l2Slice.sizeBytes) * tileCount;
    }
};

/** Table II: frequencies of the experimental system interfaces. */
struct SystemFrequencies
{
    double gatewayToPitonMhz = 180.0;
    double gatewayToChipsetMhz = 180.0;
    double chipsetLogicMhz = 280.0;
    double dramPhyMhz = 800.0;      // 1600 MT/s
    double dramControllerMhz = 200.0;
    double sdCardSpiMhz = 20.0;
    double uartBps = 115200.0;
};

/** Table III: default Piton measurement parameters. */
struct MeasurementDefaults
{
    double vddV = 1.00;
    double vcsV = 1.05;
    double vioV = 1.80;
    double coreClockMhz = 500.05;
    double roomTempC = 20.0;
    /** Samples per measurement (Section III-A). */
    std::uint32_t monitorSamples = 128;
    /** Monitor polling rate limitation (Section III-A). */
    double monitorPollHz = 17.0;
};

/** The complete default configuration used throughout the paper. */
struct SystemConfig
{
    PitonParams piton;
    SystemFrequencies freqs;
    MeasurementDefaults defaults;
};

/** Factory for the configuration matching the paper's Tables I-III. */
SystemConfig defaultSystemConfig();

/** Manhattan routing hop distance between two tiles in the mesh. */
std::uint32_t hopDistance(const PitonParams &p, TileId a, TileId b);

/** Tile coordinates from a TileId (row-major). */
struct TileCoord
{
    std::uint32_t x;
    std::uint32_t y;
};
TileCoord tileCoord(const PitonParams &p, TileId t);
TileId tileIdAt(const PitonParams &p, std::uint32_t x, std::uint32_t y);

} // namespace piton::config

#endif // PITON_CONFIG_PITON_PARAMS_HH
