#include "config/kv_file.hh"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace piton::config
{

namespace
{

std::string
trim(const std::string &s)
{
    std::size_t b = 0;
    std::size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

bool
validKeyChar(char c)
{
    return (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_'
           || c == '.';
}

} // namespace

bool
KvFile::has(const std::string &key) const
{
    bool found = false;
    for (std::size_t i = 0; i < entries_.size(); ++i) {
        if (entries_[i].first == key) {
            consumed_[i] = true;
            found = true;
        }
    }
    return found;
}

std::string
KvFile::get(const std::string &key, const std::string &def) const
{
    std::string value = def;
    bool found = false;
    for (std::size_t i = 0; i < entries_.size(); ++i) {
        if (entries_[i].first == key) {
            consumed_[i] = true;
            value = entries_[i].second; // last occurrence wins
            found = true;
        }
    }
    (void)found;
    return value;
}

double
KvFile::getDouble(const std::string &key, double def) const
{
    if (!has(key))
        return def;
    const std::string v = get(key);
    char *end = nullptr;
    errno = 0;
    const double d = std::strtod(v.c_str(), &end);
    if (end == v.c_str() || *end != '\0' || errno == ERANGE)
        throw KvError(source_ + ": key '" + key + "': bad number '" + v
                      + "'");
    return d;
}

std::uint64_t
KvFile::getUint(const std::string &key, std::uint64_t def) const
{
    if (!has(key))
        return def;
    const std::string v = get(key);
    char *end = nullptr;
    errno = 0;
    const unsigned long long u = std::strtoull(v.c_str(), &end, 10);
    if (end == v.c_str() || *end != '\0' || errno == ERANGE
        || v.find('-') != std::string::npos)
        throw KvError(source_ + ": key '" + key + "': bad count '" + v
                      + "'");
    return static_cast<std::uint64_t>(u);
}

bool
KvFile::getBool(const std::string &key, bool def) const
{
    if (!has(key))
        return def;
    const std::string v = get(key);
    if (v == "true" || v == "yes" || v == "on" || v == "1")
        return true;
    if (v == "false" || v == "no" || v == "off" || v == "0")
        return false;
    throw KvError(source_ + ": key '" + key + "': bad boolean '" + v + "'");
}

std::vector<std::string>
KvFile::unconsumedKeys() const
{
    std::vector<std::string> out;
    for (std::size_t i = 0; i < entries_.size(); ++i)
        if (!consumed_[i])
            out.push_back(entries_[i].first);
    return out;
}

void
KvFile::checkUnknownKeys(const std::string &context) const
{
    const auto unknown = unconsumedKeys();
    if (unknown.empty())
        return;
    std::string msg = source_ + ": unknown " + context + " key(s):";
    for (const auto &k : unknown)
        msg += " '" + k + "'";
    throw KvError(msg);
}

KvFile
KvFile::parseText(const std::string &text, const std::string &source)
{
    KvFile kv;
    kv.source_ = source;
    std::istringstream in(text);
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        const std::size_t cut = line.find_first_of("#;");
        if (cut != std::string::npos)
            line.erase(cut);
        line = trim(line);
        if (line.empty())
            continue;
        const std::size_t eq = line.find('=');
        if (eq == std::string::npos)
            throw KvError(source + ":" + std::to_string(lineno)
                          + ": expected 'key = value'");
        std::string key = trim(line.substr(0, eq));
        const std::string value = trim(line.substr(eq + 1));
        for (auto &c : key)
            c = static_cast<char>(
                std::tolower(static_cast<unsigned char>(c)));
        if (key.empty())
            throw KvError(source + ":" + std::to_string(lineno)
                          + ": empty key");
        for (const char c : key)
            if (!validKeyChar(c))
                throw KvError(source + ":" + std::to_string(lineno)
                              + ": bad key character in '" + key + "'");
        kv.entries_.emplace_back(std::move(key), value);
    }
    kv.consumed_.assign(kv.entries_.size(), false);
    return kv;
}

KvFile
KvFile::parseFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw KvError("cannot open config file: " + path);
    std::ostringstream buf;
    buf << in.rdbuf();
    return parseText(buf.str(), path);
}

} // namespace piton::config
