/**
 * @file
 * piton-searchctl: optimization queries over the experiment service
 * (DESIGN.md §16).
 *
 *   piton-searchctl <goal> [options]
 *
 * Goals: minimize-epi | min-energy-capped | max-throughput.
 *
 * Backend selection (the evaluation oracle):
 *   (default)      in-process executor with a local result memo
 *   --port N       one piton-served worker (pipelined TCP)
 *   --workers P1,P2[,...]  a sharded worker fleet
 *
 * Search options:
 *   --engine sa|ga|random   metaheuristic (default sa)
 *   --seed N                search RNG seed (default 1)
 *   --budget N              explore-evaluation budget (default 64)
 *   --batch N               evaluations per oracle batch (default 8)
 *   --cores N               worker threads to place (default 4)
 *   --chip N                chip id (default 2)
 *   --bench NAME            microbenchmark (default phased)
 *   --iterations N          full-fidelity workload iterations
 *   --explore-iterations N  reduced explore fidelity (0 = full)
 *   --explore-slices N      explore through sampled runs (0 = exact)
 *   --power-cap W           constraint for min-energy-capped
 *   --deadline-s S          constraint for max-throughput
 *   --out FILE              write the best-so-far trajectory as CSV
 *
 * Exit status 0 when the search found a feasible candidate and the
 * full-fidelity re-evaluation confirmed it (finalScore feasible).
 */

#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "fleet/coordinator.hh"
#include "search/searcher.hh"
#include "service/client.hh"
#include "workloads/microbenchmarks.hh"

namespace
{

using namespace piton;

[[noreturn]] void
usage(const char *prog)
{
    std::fprintf(
        stderr,
        "usage: %s <goal> [options]\n"
        "goals: minimize-epi | min-energy-capped | max-throughput\n"
        "backend: (in-process) | --port N | --workers P1,P2[,...]\n"
        "options: --engine sa|ga|random --seed N --budget N --batch N\n"
        "         --cores N --chip N --bench NAME --iterations N\n"
        "         --explore-iterations N --explore-slices N\n"
        "         --power-cap W --deadline-s S --threads N --out FILE\n",
        prog);
    std::exit(2);
}

long
numericValue(const char *prog, const char *value)
{
    if (value == nullptr)
        usage(prog);
    char *end = nullptr;
    const long v = std::strtol(value, &end, 10);
    if (end == value || *end != '\0' || v < 0)
        usage(prog);
    return v;
}

double
doubleValue(const char *prog, const char *value)
{
    if (value == nullptr)
        usage(prog);
    char *end = nullptr;
    const double v = std::strtod(value, &end);
    if (end == value || *end != '\0')
        usage(prog);
    return v;
}

std::vector<std::uint16_t>
parsePorts(const char *prog, const char *list)
{
    std::vector<std::uint16_t> ports;
    if (list == nullptr)
        usage(prog);
    const std::string s = list;
    std::size_t pos = 0;
    while (pos < s.size()) {
        std::size_t comma = s.find(',', pos);
        if (comma == std::string::npos)
            comma = s.size();
        const std::string tok = s.substr(pos, comma - pos);
        ports.push_back(
            static_cast<std::uint16_t>(numericValue(prog, tok.c_str())));
        pos = comma + 1;
    }
    if (ports.empty())
        usage(prog);
    return ports;
}

std::uint16_t
benchFromName(const char *prog, const std::string &name)
{
    using workloads::Microbench;
    for (std::uint16_t b = 0;
         b <= static_cast<std::uint16_t>(Microbench::Phased); ++b) {
        std::string n = workloads::microbenchName(
            static_cast<Microbench>(b));
        for (char &ch : n)
            ch = static_cast<char>(std::tolower(
                static_cast<unsigned char>(ch)));
        if (n == name)
            return b;
    }
    std::fprintf(stderr, "unknown bench '%s'\n", name.c_str());
    usage(prog);
}

void
printCandidate(const search::SearchSpace &space, const search::Candidate &c)
{
    const search::VfRung &rung = space.rungs[c.rung];
    std::printf("  operating point: %.2f V, %.2f MHz (rung %u)\n",
                rung.vddV, rung.freqMhz, static_cast<unsigned>(c.rung));
    std::printf("  placement:");
    for (const std::uint8_t t : c.placement)
        std::printf(" %u", static_cast<unsigned>(t));
    std::printf("\n  freq steps:");
    for (std::size_t i = 0; i < c.freqStep.size(); ++i)
        std::printf(" %u/%u", static_cast<unsigned>(c.freqStep[i]),
                    rung.dutySteps);
    std::printf("\n");
}

void
printEvaluation(const char *label, const search::Evaluation &ev,
                double score)
{
    std::printf("%s: %s, %" PRIu64 " insts, %.6f s, %.6f J"
                " (%.3f W avg, EPI %.3e J/inst), score %.6e\n",
                label, ev.completed ? "completed" : "incomplete",
                ev.insts, ev.seconds, ev.energyJ, ev.avgPowerW, ev.epi,
                score);
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        usage(argv[0]);
    std::string goal_arg = argv[1];
    if (goal_arg == "minimize-epi") // CLI alias for the §16 example
        goal_arg = "min-epi";

    std::string engine = "sa";
    std::string out_path;
    std::uint16_t port = 0;
    std::vector<std::uint16_t> worker_ports;
    unsigned threads = 1;
    search::SearcherOptions opts;
    search::SearchTask task;
    task.objective.goal = search::Goal::MinEpi;
    std::uint32_t cores = 4;
    int chip_id = 2;
    task.base.workload.bench =
        static_cast<std::uint16_t>(workloads::Microbench::Phased);
    task.base.workload.iterations = 2;
    task.base.workload.threadsPerCore = 2;
    task.base.maxCycles = 50'000'000;

    try {
        task.objective.goal = search::goalFromName(goal_arg);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "%s\n", e.what());
        usage(argv[0]);
    }

    for (int i = 2; i < argc; ++i) {
        const char *a = argv[i];
        const char *next = i + 1 < argc ? argv[i + 1] : nullptr;
        if (std::strcmp(a, "--engine") == 0 && next != nullptr) {
            engine = next;
            ++i;
        } else if (std::strcmp(a, "--seed") == 0) {
            opts.seed =
                static_cast<std::uint64_t>(numericValue(argv[0], next));
            ++i;
        } else if (std::strcmp(a, "--budget") == 0) {
            opts.budget =
                static_cast<std::uint32_t>(numericValue(argv[0], next));
            ++i;
        } else if (std::strcmp(a, "--batch") == 0) {
            opts.batch =
                static_cast<std::uint32_t>(numericValue(argv[0], next));
            ++i;
        } else if (std::strcmp(a, "--cores") == 0) {
            cores = static_cast<std::uint32_t>(numericValue(argv[0], next));
            ++i;
        } else if (std::strcmp(a, "--chip") == 0) {
            chip_id = static_cast<int>(numericValue(argv[0], next));
            ++i;
        } else if (std::strcmp(a, "--bench") == 0 && next != nullptr) {
            task.base.workload.bench = benchFromName(argv[0], next);
            ++i;
        } else if (std::strcmp(a, "--iterations") == 0) {
            task.base.workload.iterations =
                static_cast<std::uint64_t>(numericValue(argv[0], next));
            ++i;
        } else if (std::strcmp(a, "--explore-iterations") == 0) {
            task.exploreIterations =
                static_cast<std::uint64_t>(numericValue(argv[0], next));
            ++i;
        } else if (std::strcmp(a, "--explore-slices") == 0) {
            task.exploreSampledSlices =
                static_cast<std::uint32_t>(numericValue(argv[0], next));
            ++i;
        } else if (std::strcmp(a, "--power-cap") == 0) {
            task.objective.powerCapW = doubleValue(argv[0], next);
            ++i;
        } else if (std::strcmp(a, "--deadline-s") == 0) {
            task.objective.deadlineS = doubleValue(argv[0], next);
            ++i;
        } else if (std::strcmp(a, "--threads") == 0) {
            threads = static_cast<unsigned>(numericValue(argv[0], next));
            ++i;
        } else if (std::strcmp(a, "--port") == 0) {
            port = static_cast<std::uint16_t>(numericValue(argv[0], next));
            ++i;
        } else if (std::strcmp(a, "--workers") == 0) {
            worker_ports = parsePorts(argv[0], next);
            ++i;
        } else if (std::strcmp(a, "--out") == 0 && next != nullptr) {
            out_path = next;
            ++i;
        } else {
            usage(argv[0]);
        }
    }

    try {
        task.base.chipId = chip_id;
        task.space = search::defaultSpace(cores, chip_id);

        std::unique_ptr<service::TcpClient> tcp;
        std::unique_ptr<fleet::FleetCoordinator> fleet_coord;
        std::unique_ptr<search::Oracle> oracle;
        if (!worker_ports.empty()) {
            fleet::FleetConfig fcfg;
            fcfg.workerPorts = worker_ports;
            fcfg.clientName = "piton-searchctl";
            fleet_coord =
                std::make_unique<fleet::FleetCoordinator>(fcfg);
            oracle = std::make_unique<search::FleetOracle>(*fleet_coord,
                                                           threads);
        } else if (port != 0) {
            tcp = std::make_unique<service::TcpClient>(port);
            oracle = std::make_unique<search::ClientOracle>(*tcp);
        } else {
            oracle = std::make_unique<search::InProcessOracle>(threads);
        }

        const std::unique_ptr<search::Searcher> searcher =
            search::makeSearcher(engine);
        const search::SearchResult r =
            searcher->search(task, *oracle, opts);

        std::printf("engine %s, goal %s, %" PRIu64 " oracle calls"
                    " (%" PRIu64 " cache hits, ratio %.3f)\n",
                    r.engine.c_str(),
                    search::goalName(task.objective.goal), r.oracleCalls,
                    r.cacheHits, r.cacheHitRatio);
        if (r.bestScore >= search::kInvalidScore) {
            std::fprintf(stderr, "no feasible candidate found\n");
            return 1;
        }
        printCandidate(task.space, r.best);
        printEvaluation("explore best", r.bestEval, r.bestScore);
        printEvaluation("final (full fidelity)", r.finalEval,
                        r.finalScore);

        if (!out_path.empty()) {
            std::FILE *f = std::fopen(out_path.c_str(), "w");
            if (f == nullptr) {
                std::fprintf(stderr, "cannot write %s\n",
                             out_path.c_str());
                return 1;
            }
            const std::string csv = search::trajectoryCsv(r);
            std::fwrite(csv.data(), 1, csv.size(), f);
            std::fclose(f);
            std::printf("trajectory: %s (%zu points)\n", out_path.c_str(),
                        r.trajectory.size());
        }
        return r.finalScore < search::kInfeasibleBase ? 0 : 1;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
        return 1;
    }
}
