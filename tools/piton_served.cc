/**
 * @file
 * piton-served: the persistent characterization server.
 *
 * Binds 127.0.0.1:<port>, accepts length-prefixed binary frames from
 * piton-servectl (or any client linking src/service/client.hh), and
 * schedules experiments onto a bounded worker pool with a sharded
 * content-addressed result cache and checkpoint-backed warm-started
 * sweeps (DESIGN.md §11).
 *
 * Flags:
 *   --port N          listening port (default 7425; 0 = ephemeral,
 *                     printed on stdout for scripting)
 *   --threads N       worker threads (0 = all hardware threads)
 *   --max-pending N   admission bound before requests are shed
 *   --cache-dir DIR   spill cached results to DIR (survives restarts)
 *   --worker-id ID    identity in HelloAck/StatsReply (default
 *                     worker-<port>; fleet members should pass stable
 *                     names so routing stats stay attributable)
 *   --log-level L     silent | warn | info | debug
 *
 * SIGINT/SIGTERM trigger the same graceful shutdown as a client
 * Shutdown frame: stop accepting, drain in-flight work, flush, exit.
 */

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "common/logging.hh"
#include "service/server.hh"

namespace
{

piton::service::ExperimentServer *gServer = nullptr;

void
onSignal(int)
{
    if (gServer != nullptr)
        gServer->requestStop(); // atomic store + self-pipe write
}

[[noreturn]] void
usage(const char *prog)
{
    std::fprintf(stderr,
                 "usage: %s [--port N] [--threads N] [--max-pending N]"
                 " [--cache-dir DIR] [--worker-id ID] [--log-level L]\n",
                 prog);
    std::exit(2);
}

long
numericValue(const char *prog, const char *value)
{
    if (value == nullptr)
        usage(prog);
    char *end = nullptr;
    const long v = std::strtol(value, &end, 10);
    if (end == value || *end != '\0' || v < 0)
        usage(prog);
    return v;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace piton;

    service::ServerConfig cfg;
    cfg.port = 7425;
    for (int i = 1; i < argc; ++i) {
        const char *a = argv[i];
        const char *next = i + 1 < argc ? argv[i + 1] : nullptr;
        if (std::strcmp(a, "--port") == 0) {
            cfg.port = static_cast<std::uint16_t>(
                numericValue(argv[0], next));
            ++i;
        } else if (std::strcmp(a, "--threads") == 0) {
            cfg.scheduler.threads =
                static_cast<unsigned>(numericValue(argv[0], next));
            ++i;
        } else if (std::strcmp(a, "--max-pending") == 0) {
            cfg.scheduler.maxPending =
                static_cast<std::size_t>(numericValue(argv[0], next));
            ++i;
        } else if (std::strcmp(a, "--cache-dir") == 0) {
            if (next == nullptr)
                usage(argv[0]);
            cfg.scheduler.resultCache.diskDir = next;
            ++i;
        } else if (std::strcmp(a, "--worker-id") == 0) {
            if (next == nullptr)
                usage(argv[0]);
            cfg.workerId = next;
            ++i;
        } else if (std::strcmp(a, "--log-level") == 0) {
            if (next == nullptr)
                usage(argv[0]);
            LogLevel level;
            if (!parseLogLevel(next, level))
                usage(argv[0]);
            setLogLevel(level);
            ++i;
        } else {
            usage(argv[0]);
        }
    }

    service::ExperimentServer server(cfg);
    try {
        server.start();
    } catch (const std::exception &e) {
        std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
        return 1;
    }

    // Scripting handshake: the resolved port on stdout, then flush so
    // a wrapper reading a pipe unblocks immediately.
    std::printf("piton-served port %u\n",
                static_cast<unsigned>(server.port()));
    std::fflush(stdout);

    gServer = &server;
    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);

    server.wait(); // returns after a signal or client Shutdown frame
    gServer = nullptr;
    return 0;
}
