/**
 * @file
 * piton-fleetctl: coordinator CLI for a fleet of piton-served workers.
 *
 *   piton-fleetctl --workers P1,P2[,...] ping
 *   piton-fleetctl --workers ... stats
 *   piton-fleetctl --workers ... run <preset> [--samples N]
 *                  [--deadline-ms N] [--repeat N] [--expect-identical]
 *   piton-fleetctl --workers ... sweep --points N [--verify]
 *   piton-fleetctl --workers ... shutdown
 *
 * Requests are consistent-hash routed across the workers with
 * automatic failover (DESIGN.md §15).  `sweep` drives the shared
 * deterministic load set (fleet/load.hh) through the fleet; with
 * --verify each response body is compared byte-for-byte against an
 * in-process single-node LocalClient reference — the fleet's
 * determinism contract, exercised end to end.  `shutdown` gracefully
 * stops every reachable worker.
 */

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "fleet/coordinator.hh"
#include "fleet/load.hh"
#include "service/client.hh"

namespace
{

using namespace piton;

[[noreturn]] void
usage(const char *prog)
{
    std::fprintf(stderr,
                 "usage: %s --workers P1,P2[,...] <command>\n"
                 "commands:\n"
                 "  ping\n"
                 "  stats\n"
                 "  run <preset> [--samples N] [--deadline-ms N]"
                 " [--repeat N] [--expect-identical]\n"
                 "  sweep --points N [--verify]\n"
                 "  shutdown\n"
                 "presets:",
                 prog);
    for (const std::string &name : service::presetNames())
        std::fprintf(stderr, " %s", name.c_str());
    std::fprintf(stderr, "\n");
    std::exit(2);
}

long
numericValue(const char *prog, const char *value)
{
    if (value == nullptr)
        usage(prog);
    char *end = nullptr;
    const long v = std::strtol(value, &end, 10);
    if (end == value || *end != '\0' || v < 0)
        usage(prog);
    return v;
}

std::vector<std::uint16_t>
parsePorts(const char *prog, const char *list)
{
    std::vector<std::uint16_t> ports;
    if (list == nullptr)
        usage(prog);
    const std::string s = list;
    std::size_t pos = 0;
    while (pos < s.size()) {
        std::size_t comma = s.find(',', pos);
        if (comma == std::string::npos)
            comma = s.size();
        const std::string tok = s.substr(pos, comma - pos);
        ports.push_back(
            static_cast<std::uint16_t>(numericValue(prog, tok.c_str())));
        pos = comma + 1;
    }
    if (ports.empty())
        usage(prog);
    return ports;
}

int
cmdPing(fleet::FleetCoordinator &coord)
{
    const std::size_t up = coord.checkHealthOnce();
    for (const fleet::WorkerSnapshot &w : coord.workerSnapshots())
        std::printf("%-16s port %5u  %s\n", w.id.c_str(),
                    static_cast<unsigned>(w.port), w.up ? "up" : "DOWN");
    const fleet::FleetMetrics m = coord.metrics();
    std::printf("%zu/%zu workers up\n", up, m.workersTotal);
    return up == m.workersTotal ? 0 : 1;
}

int
cmdStats(fleet::FleetCoordinator &coord)
{
    const service::SchedulerMetrics sum = coord.stats();
    std::printf("aggregate: submitted %" PRIu64 "  completed %" PRIu64
                "  shed %" PRIu64 "  errors %" PRIu64
                "  cache hits %" PRIu64 " (rate %.3f)\n",
                sum.submitted, sum.completed, sum.shed, sum.errors,
                sum.cacheHits, sum.hitRate);
    for (const fleet::WorkerDetail &d : coord.workerDetails()) {
        const fleet::WorkerSnapshot &w = d.snapshot;
        std::printf("%-16s port %5u  %-4s  served %" PRIu64
                    "  failures %" PRIu64,
                    w.id.c_str(), static_cast<unsigned>(w.port),
                    w.up ? "up" : "DOWN", w.requests, w.failures);
        if (d.statsOk)
            std::printf("  result-cache %" PRIu64 " hits / %" PRIu64
                        " misses",
                        d.stats.metrics.resultCache.hits,
                        d.stats.metrics.resultCache.misses);
        std::printf("\n");
    }
    const fleet::FleetMetrics m = coord.metrics();
    std::printf("fleet: requests %" PRIu64 "  retries %" PRIu64
                "  failovers %" PRIu64 "  hit rate %.3f\n",
                m.requests, m.retries, m.failovers, m.hitRate);
    return 0;
}

int
cmdSweep(fleet::FleetCoordinator &coord, long points, bool verify)
{
    // Single-node reference, built lazily only when verifying.
    service::ExperimentScheduler *ref_sched = nullptr;
    service::SchedulerConfig ref_cfg;
    ref_cfg.threads = 1;
    service::ExperimentScheduler ref(ref_cfg);
    if (verify)
        ref_sched = &ref;
    service::LocalClient reference(ref);

    long mismatches = 0, failures = 0;
    for (long i = 0; i < points; ++i) {
        const service::ExperimentRequest req =
            fleet::loadPoint(static_cast<std::size_t>(i));
        const service::ClientResult got = coord.run(req);
        if (got.status != service::Status::Ok) {
            std::fprintf(stderr, "point %ld: status %s\n", i,
                         service::statusName(got.status));
            ++failures;
            continue;
        }
        if (ref_sched != nullptr) {
            const service::ClientResult want = reference.run(req);
            if (got.body != want.body) {
                std::fprintf(stderr,
                             "point %ld: fleet body differs from "
                             "single-node reference\n",
                             i);
                ++mismatches;
            }
        }
    }
    const fleet::FleetMetrics m = coord.metrics();
    std::printf("%ld points: %" PRIu64 " requests, %" PRIu64
                " retries, %" PRIu64 " failovers, hit rate %.3f\n",
                points, m.requests, m.retries, m.failovers, m.hitRate);
    if (verify) {
        if (mismatches == 0 && failures == 0)
            std::printf("verify: all %ld bodies byte-identical to "
                        "single-node reference\n",
                        points);
        else
            std::fprintf(stderr, "verify FAILED: %ld mismatches, %ld "
                         "failures\n",
                         mismatches, failures);
    }
    return mismatches == 0 && failures == 0 ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::uint16_t> ports;
    int i = 1;
    if (i + 1 < argc && std::strcmp(argv[i], "--workers") == 0) {
        ports = parsePorts(argv[0], argv[i + 1]);
        i += 2;
    }
    if (ports.empty() || i >= argc)
        usage(argv[0]);
    const std::string command = argv[i++];

    try {
        fleet::FleetConfig cfg;
        cfg.workerPorts = ports;
        cfg.clientName = "piton-fleetctl";
        fleet::FleetCoordinator coord(cfg);

        if (command == "ping")
            return cmdPing(coord);
        if (command == "stats")
            return cmdStats(coord);
        if (command == "shutdown") {
            int rc = 0;
            for (const std::uint16_t port : ports) {
                try {
                    service::TcpClient client(port);
                    client.shutdownServer();
                    std::printf("port %u shut down\n",
                                static_cast<unsigned>(port));
                } catch (const std::exception &e) {
                    std::fprintf(stderr, "port %u: %s\n",
                                 static_cast<unsigned>(port), e.what());
                    rc = 1;
                }
            }
            return rc;
        }
        if (command == "sweep") {
            long points = 16;
            bool verify = false;
            for (; i < argc; ++i) {
                const char *a = argv[i];
                const char *next = i + 1 < argc ? argv[i + 1] : nullptr;
                if (std::strcmp(a, "--points") == 0) {
                    points = numericValue(argv[0], next);
                    ++i;
                } else if (std::strcmp(a, "--verify") == 0) {
                    verify = true;
                } else {
                    usage(argv[0]);
                }
            }
            return cmdSweep(coord, points, verify);
        }
        if (command != "run" || i >= argc)
            usage(argv[0]);

        service::ExperimentRequest req = service::presetRequest(argv[i++]);
        long repeat = 1;
        bool expect_identical = false;
        for (; i < argc; ++i) {
            const char *a = argv[i];
            const char *next = i + 1 < argc ? argv[i + 1] : nullptr;
            if (std::strcmp(a, "--samples") == 0) {
                req.samples = static_cast<std::uint32_t>(
                    numericValue(argv[0], next));
                ++i;
            } else if (std::strcmp(a, "--deadline-ms") == 0) {
                req.deadlineMs = static_cast<std::uint32_t>(
                    numericValue(argv[0], next));
                ++i;
            } else if (std::strcmp(a, "--repeat") == 0) {
                repeat = numericValue(argv[0], next);
                ++i;
            } else if (std::strcmp(a, "--expect-identical") == 0) {
                expect_identical = true;
            } else {
                usage(argv[0]);
            }
        }

        std::vector<std::uint8_t> first_body;
        for (long n = 0; n < repeat; ++n) {
            const service::ClientResult r = coord.run(req);
            if (n == 0) {
                first_body = r.body;
                std::printf("status: %s%s (worker %s)\n",
                            service::statusName(r.status),
                            r.servedFromCache ? " (cached)" : "",
                            coord.ownerOf(req).c_str());
                if (r.status != service::Status::Ok) {
                    if (!r.response.error.empty())
                        std::fprintf(stderr, "error: %s\n",
                                     r.response.error.c_str());
                    return 1;
                }
                continue;
            }
            if (expect_identical && r.body != first_body) {
                std::fprintf(stderr,
                             "FAIL: response %ld differs from first\n",
                             n);
                return 1;
            }
        }
        if (repeat > 1 && expect_identical)
            std::printf("%ld repeats byte-identical\n", repeat - 1);
        return 0;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
        return 1;
    }
}
