/**
 * @file
 * piton-servectl: command-line client for piton-served.
 *
 *   piton-servectl [--port N] ping
 *   piton-servectl [--port N] stats
 *   piton-servectl [--port N] run <preset> [--samples N]
 *                  [--deadline-ms N] [--repeat N] [--expect-identical]
 *   piton-servectl [--port N] shutdown
 *
 * `run` executes one of the paper presets (fig9, fig10, fig11, fig13,
 * fig14, fig16, fig17, table5, table7) and prints the decoded result.
 * --repeat N issues the same request N times on one connection;
 * --expect-identical additionally asserts every response body is
 * byte-identical to the first (the cache-correctness check the CI
 * smoke job runs) and that the repeats were served from the cache.
 */

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "service/client.hh"

namespace
{

using namespace piton;

[[noreturn]] void
usage(const char *prog)
{
    std::fprintf(stderr,
                 "usage: %s [--port N] <command>\n"
                 "commands:\n"
                 "  ping\n"
                 "  stats\n"
                 "  run <preset> [--samples N] [--deadline-ms N]"
                 " [--repeat N] [--expect-identical]\n"
                 "  shutdown\n"
                 "presets:",
                 prog);
    for (const std::string &name : service::presetNames())
        std::fprintf(stderr, " %s", name.c_str());
    std::fprintf(stderr, "\n");
    std::exit(2);
}

long
numericValue(const char *prog, const char *value)
{
    if (value == nullptr)
        usage(prog);
    char *end = nullptr;
    const long v = std::strtol(value, &end, 10);
    if (end == value || *end != '\0' || v < 0)
        usage(prog);
    return v;
}

void
printRail(const char *name, const service::RailStatsWire &s)
{
    std::printf("  %-8s mean %8.4f W  stddev %7.4f W  [%8.4f, %8.4f]"
                "  n=%" PRIu64 "\n",
                name, s.meanW, s.stddevW, s.minW, s.maxW, s.count);
}

void
printResult(const service::ClientResult &r)
{
    std::printf("status: %s%s\n", service::statusName(r.status),
                r.servedFromCache ? " (cached)" : "");
    if (r.status != service::Status::Ok) {
        if (!r.response.error.empty())
            std::printf("error: %s\n", r.response.error.c_str());
        return;
    }
    switch (r.response.kind) {
    case service::Kind::MeasurePower:
    case service::Kind::MeasureStatic:
        printRail("vdd", r.response.measure.vdd);
        printRail("vcs", r.response.measure.vcs);
        printRail("vio", r.response.measure.vio);
        printRail("on-chip", r.response.measure.onChip);
        std::printf("  die %.2f C\n", r.response.measure.dieTempC);
        break;
    case service::Kind::EnergyRun:
    case service::Kind::PlacedRun:
        std::printf("  completed=%u cycles=%" PRIu64 " insts=%" PRIu64
                    " time=%.6f s\n",
                    r.response.energy.completed, r.response.energy.cycles,
                    r.response.energy.insts, r.response.energy.seconds);
        std::printf("  energy on-chip %.6f J (active %.6f J, idle %.6f"
                    " J)\n",
                    r.response.energy.onChipEnergyJ,
                    r.response.energy.activeEnergyJ,
                    r.response.energy.idleEnergyJ);
        if (r.response.energy.sampled)
            std::printf("  sampled: ±%.6f J (EPI CI ±%.3g), simulated"
                        " %.1f%%\n",
                        r.response.energy.energyCi95J,
                        r.response.energy.epiCi95,
                        100.0 * r.response.energy.simulatedFrac);
        break;
    case service::Kind::Sweep:
        for (const auto &p : r.response.points)
            std::printf("  fan %.3f: %.4f W (die %.2f C)\n",
                        p.fanEffectiveness, p.onChip.meanW, p.finalDieC);
        break;
    case service::Kind::VfCurve:
        for (const auto &p : r.response.vfPoints)
            std::printf("  %.2f V: fmax %.1f MHz%s\n", p.vddV, p.fmaxMhz,
                        p.thermallyLimited ? " (thermally limited)" : "");
        break;
    case service::Kind::KindCount:
        break;
    }
}

void
printStats(const service::SchedulerMetrics &m)
{
    std::printf("submitted %" PRIu64 "  completed %" PRIu64
                "  shed %" PRIu64 "  errors %" PRIu64 "\n",
                m.submitted, m.completed, m.shed, m.errors);
    std::printf("cancelled %" PRIu64 "  deadline-expired %" PRIu64
                "  queue-depth %zu\n",
                m.cancelled, m.deadlineExpired, m.queueDepth);
    std::printf("cache hits %" PRIu64 " (rate %.3f)  latency p50 %.2f ms"
                "  p99 %.2f ms\n",
                m.cacheHits, m.hitRate, m.latencyP50Ms, m.latencyP99Ms);
    std::printf("result cache: %zu entries, %zu bytes, %" PRIu64
                " evictions, %" PRIu64 " corrupt-rejected\n",
                m.resultCache.entries, m.resultCache.bytes,
                m.resultCache.evictions, m.resultCache.corruptRejected);
    std::printf("prefix cache: %zu entries, %zu bytes, %" PRIu64
                " coalesced\n",
                m.prefixCache.entries, m.prefixCache.bytes,
                m.prefixCache.coalesced);
}

} // namespace

int
main(int argc, char **argv)
{
    std::uint16_t port = 7425;
    int i = 1;
    if (i + 1 < argc && std::strcmp(argv[i], "--port") == 0) {
        port = static_cast<std::uint16_t>(numericValue(argv[0], argv[i + 1]));
        i += 2;
    }
    if (i >= argc)
        usage(argv[0]);
    const std::string command = argv[i++];

    try {
        service::TcpClient client(port);

        if (command == "ping") {
            client.ping();
            std::printf("pong\n");
            return 0;
        }
        if (command == "stats") {
            printStats(client.stats());
            return 0;
        }
        if (command == "shutdown") {
            client.shutdownServer();
            std::printf("server shut down\n");
            return 0;
        }
        if (command != "run" || i >= argc)
            usage(argv[0]);

        service::ExperimentRequest req = service::presetRequest(argv[i++]);
        long repeat = 1;
        bool expect_identical = false;
        for (; i < argc; ++i) {
            const char *a = argv[i];
            const char *next = i + 1 < argc ? argv[i + 1] : nullptr;
            if (std::strcmp(a, "--samples") == 0) {
                req.samples = static_cast<std::uint32_t>(
                    numericValue(argv[0], next));
                ++i;
            } else if (std::strcmp(a, "--deadline-ms") == 0) {
                req.deadlineMs = static_cast<std::uint32_t>(
                    numericValue(argv[0], next));
                ++i;
            } else if (std::strcmp(a, "--repeat") == 0) {
                repeat = numericValue(argv[0], next);
                ++i;
            } else if (std::strcmp(a, "--expect-identical") == 0) {
                expect_identical = true;
            } else {
                usage(argv[0]);
            }
        }

        service::ClientResult first;
        for (long n = 0; n < repeat; ++n) {
            service::ClientResult r = client.run(req);
            if (n == 0) {
                first = std::move(r);
                printResult(first);
                continue;
            }
            if (!expect_identical)
                continue;
            if (r.body != first.body) {
                std::fprintf(stderr,
                             "FAIL: response %ld differs from first\n", n);
                return 1;
            }
            if (!r.servedFromCache) {
                std::fprintf(stderr,
                             "FAIL: repeat %ld missed the cache\n", n);
                return 1;
            }
        }
        if (repeat > 1 && expect_identical)
            std::printf("%ld repeats byte-identical, served from cache\n",
                        repeat - 1);
        if (first.status != service::Status::Ok)
            return 1;
        return 0;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
        return 1;
    }
}
