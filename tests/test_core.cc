/**
 * @file
 * Tests for the fine-grained multithreaded core and the chip run loop:
 * issue timing per Table VI, FGMT interleaving, store-buffer rollback,
 * load-miss rollback, and whole-chip execution.
 */

#include <gtest/gtest.h>

#include "arch/piton_chip.hh"
#include "chip/chip_instance.hh"
#include "isa/assembler.hh"
#include "isa/program.hh"
#include "power/energy_model.hh"

namespace piton::arch
{
namespace
{

class CoreTest : public testing::Test
{
  protected:
    CoreTest()
        : chip_(params_, chip::makeChip(2), energy_, 11)
    {
    }

    /** Run until halted (or the cycle cap) and return elapsed cycles. */
    Cycle
    runToHalt(Cycle cap = 2'000'000)
    {
        const auto res = chip_.run(cap);
        EXPECT_TRUE(res.allHalted) << "program did not halt within cap";
        return res.cyclesElapsed;
    }

    config::PitonParams params_;
    power::EnergyModel energy_;
    PitonChip chip_;
};

TEST_F(CoreTest, CountingLoopProducesCorrectRegisterValue)
{
    const isa::Program p = isa::assemble(R"(
        set 0, %r1
    loop:
        add %r1, 1, %r1
        cmp %r1, 100
        bl loop
        halt
    )");
    chip_.loadProgram(0, 0, &p);
    runToHalt();
    EXPECT_EQ(chip_.core(0).thread(0).regs[1], 100u);
    // 1 set + 100 * (add + cmp + bl) + halt = 302 instructions.
    EXPECT_EQ(chip_.core(0).thread(0).instsExecuted, 302u);
}

TEST_F(CoreTest, HotLoopIpcMatchesPipelineModel)
{
    // Loop body: add(1) + cmp(1) + bl(3, incl. 2 bubbles) = 5 cycles
    // for 3 instructions -> single-thread IPC 0.6 once the loop is
    // resident in the L1I.
    const isa::Program hot = isa::assemble(R"(
        set 0, %r1
    loop:
        add %r1, 1, %r1
        cmp %r1, 10000
        bl loop
        halt
    )");
    chip_.loadProgram(0, 0, &hot);
    const Cycle cycles = runToHalt();
    const double hot_ipc =
        static_cast<double>(chip_.core(0).thread(0).instsExecuted)
        / static_cast<double>(cycles);
    EXPECT_NEAR(hot_ipc, 0.6, 0.05);
}

TEST_F(CoreTest, TwoThreadsInterleaveAndHideBranchBubbles)
{
    const char *src = R"(
        set 0, %r1
    loop:
        add %r1, 1, %r1
        cmp %r1, 10000
        bl loop
        halt
    )";
    const isa::Program p = isa::assemble(src);
    // One thread: 5 cycles per 3-instruction iteration (IPC 0.6).
    PitonChip single(params_, chip::makeChip(2), energy_, 3);
    single.loadProgram(0, 0, &p);
    const Cycle t1 = single.run(2'000'000).cyclesElapsed;

    // Two threads run the same loop: branch bubbles of one thread are
    // filled by the other, so total cycles < 2x single.
    PitonChip dual(params_, chip::makeChip(2), energy_, 3);
    dual.loadProgram(0, 0, &p);
    dual.loadProgram(0, 1, &p);
    const Cycle t2 = dual.run(4'000'000).cyclesElapsed;
    EXPECT_LT(t2, static_cast<Cycle>(1.5 * t1));
    EXPECT_GT(t2, t1); // but not free
}

TEST_F(CoreTest, StoreBufferFillsAndRollsBack)
{
    // Back-to-back stores overwhelm the 8-entry buffer (stx(F)).
    isa::ProgramBuilder b;
    b.set(1, 0x20000);
    for (int i = 0; i < 100; ++i)
        b.stx(2, 1, (i % 2) * 8); // two hot lines, stay in L1.5
    b.halt();
    const isa::Program p = b.build();
    chip_.loadProgram(0, 0, &p);
    runToHalt();
    EXPECT_GT(chip_.core(0).thread(0).storeRollbacks, 20u);
}

TEST_F(CoreTest, NopsAfterStoresAvoidRollback)
{
    // stx + 9 nops matches the drain rate: never full (stx(NF)).
    // Warm the two target lines first so the measured stores hit an
    // M-state L1.5 line, as in the paper's methodology.
    isa::ProgramBuilder b;
    b.set(1, 0x20000);
    b.stx(2, 1, 0).stx(2, 1, 8);
    for (int n = 0; n < 2000; ++n)
        b.nop(); // let the warm-up stores drain completely
    for (int i = 0; i < 50; ++i) {
        b.stx(2, 1, (i % 2) * 8);
        for (int n = 0; n < 9; ++n)
            b.nop();
    }
    b.halt();
    const isa::Program p = b.build();
    chip_.loadProgram(0, 0, &p);
    runToHalt();
    EXPECT_EQ(chip_.core(0).thread(0).storeRollbacks, 0u);
}

TEST_F(CoreTest, LoadMissesRollBackAndStall)
{
    const isa::Program p = isa::assemble(R"(
        set 0x40000, %r1
        ldx [%r1 + 0], %r2
        ldx [%r1 + 0], %r3
        halt
    )");
    chip_.loadProgram(0, 0, &p);
    runToHalt();
    const auto &t = chip_.core(0).thread(0);
    EXPECT_EQ(t.loadRollbacks, 1u);  // first load misses, second hits
    EXPECT_GT(t.memStallCycles, 390u);
}

TEST_F(CoreTest, SdivxOccupiesTheThreadPerTableVI)
{
    // A hot loop of sdivx: each iteration costs 72 (sdivx) + 1 (add)
    // + 1 (cmp) + 3 (bl) = 77 cycles.
    const isa::Program p = isa::assemble(R"(
        set 1000000, %r1
        set 3, %r2
        set 0, %r4
    loop:
        sdivx %r1, %r2, %r3
        add %r4, 1, %r4
        cmp %r4, 1000
        bl loop
        halt
    )");
    chip_.loadProgram(0, 0, &p);
    const Cycle cycles = runToHalt();
    EXPECT_GT(cycles, 1000u * 77u);
    EXPECT_LT(cycles, 1000u * 77u + 1500u); // + I-warmup, bookkeeping
}

TEST_F(CoreTest, HwidDistinguishesThreads)
{
    const isa::Program p = isa::assemble("rdhwid %r1\nhalt\n");
    chip_.loadProgram(0, 0, &p);
    chip_.loadProgram(0, 1, &p);
    chip_.loadProgram(3, 1, &p);
    runToHalt();
    EXPECT_EQ(chip_.core(0).thread(0).regs[1], 0u);
    EXPECT_EQ(chip_.core(0).thread(1).regs[1], 1u);
    EXPECT_EQ(chip_.core(3).thread(1).regs[1], 7u);
}

TEST_F(CoreTest, SharedMemoryCommunicationAcrossTiles)
{
    // Tile 0 stores a flag; tile 1 spins on it, then reads the value.
    const isa::Program writer = isa::assemble(R"(
        set 0x50000, %r1
        set 1234, %r2
        stx %r2, [%r1 + 8]
        set 1, %r3
        stx %r3, [%r1 + 0]
        halt
    )");
    const isa::Program reader = isa::assemble(R"(
        set 0x50000, %r1
    spin:
        ldx [%r1 + 0], %r2
        cmp %r2, 1
        bne spin
        ldx [%r1 + 8], %r3
        halt
    )");
    chip_.loadProgram(0, 0, &writer);
    chip_.loadProgram(1, 0, &reader);
    runToHalt();
    EXPECT_EQ(chip_.core(1).thread(0).regs[3], 1234u);
}

TEST_F(CoreTest, CasLockMutualExclusion)
{
    // Two threads increment a shared counter 100 times each under a
    // CAS lock; the total must be exactly 200.
    const char *src = R"(
        set 0x60000, %r1      ! lock address
        set 0x60040, %r2      ! counter address (different L2 line)
        set 0, %r5            ! iteration count
    outer:
    acquire:
        set 0, %r6            ! expected: unlocked
        set 1, %r7            ! swap in: locked
        casx [%r1], %r6, %r7
        cmp %r7, 0
        bne acquire           ! someone else held it
        ldx [%r2 + 0], %r8
        add %r8, 1, %r8
        stx %r8, [%r2 + 0]
        set 0, %r9
        stx %r9, [%r1 + 0]    ! release (plain store; cas invalidates)
        add %r5, 1, %r5
        cmp %r5, 100
        bl outer
        halt
    )";
    const isa::Program p = isa::assemble(src);
    chip_.loadProgram(0, 0, &p);
    chip_.loadProgram(4, 0, &p);
    runToHalt(20'000'000);
    EXPECT_EQ(chip_.memory().read64(0x60040), 200u);
}

TEST_F(CoreTest, ChipRunStopsAtCycleCap)
{
    const isa::Program p = isa::assemble("loop:\nba loop\n");
    chip_.loadProgram(0, 0, &p);
    const auto res = chip_.run(5000);
    EXPECT_FALSE(res.allHalted);
    EXPECT_EQ(res.cyclesElapsed, 5000u);
    EXPECT_EQ(chip_.now(), 5000u);
}

TEST_F(CoreTest, ActiveThreadCountTracksHalts)
{
    const isa::Program p = isa::assemble("nop\nhalt\n");
    chip_.loadProgram(0, 0, &p);
    chip_.loadProgram(1, 0, &p);
    EXPECT_EQ(chip_.activeThreads(), 2u);
    runToHalt();
    EXPECT_EQ(chip_.activeThreads(), 0u);
}

TEST_F(CoreTest, ExecEnergyAccumulatesPerInstruction)
{
    const isa::Program p = isa::assemble(R"(
        set 0, %r1
    loop:
        add %r1, 1, %r1
        cmp %r1, 1000
        bl loop
        halt
    )");
    chip_.loadProgram(0, 0, &p);
    runToHalt();
    const double exec_j =
        chip_.ledger().category(power::Category::Exec).onChipCoreAndSram();
    const double per_inst_pj =
        jToPj(exec_j) / static_cast<double>(chip_.totalInsts());
    // Int-dominated mix lands in the IntSimple/Branch EPI band.
    EXPECT_GT(per_inst_pj, 40.0);
    EXPECT_LT(per_inst_pj, 200.0);
}

TEST_F(CoreTest, FallingOffProgramEndPanics)
{
    const isa::Program p = isa::assemble("nop\n"); // no halt
    chip_.loadProgram(0, 0, &p);
    // Enough cycles to cover the cold I-fetch before the fall-off.
    EXPECT_THROW(chip_.run(10000), std::logic_error);
}

} // namespace
} // namespace piton::arch
