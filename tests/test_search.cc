/**
 * @file
 * Search-space unit suite (src/search/): candidate canonicalization
 * and its equivalence classes, stable keys, move/constructor
 * invariants, the candidate→service-request mapping (equal canonical
 * candidates must share a result-cache key — that identity is what
 * makes search revisits cache hits), objective score banding, and the
 * engine factory.
 */

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <vector>

#include "common/rng.hh"
#include "search/objective.hh"
#include "search/searcher.hh"
#include "search/space.hh"
#include "workloads/microbenchmarks.hh"

namespace
{

using namespace piton;
using namespace piton::search;

SearchSpace
space4()
{
    return defaultSpace(/*cores=*/4, /*chip_id=*/2);
}

/** The invariants every canonical candidate satisfies. */
void
expectCanonical(const SearchSpace &space, const Candidate &c)
{
    ASSERT_LT(c.rung, space.rungs.size());
    ASSERT_EQ(c.placement.size(), space.cores);
    ASSERT_EQ(c.freqStep.size(), space.cores);
    std::set<std::uint8_t> tiles(c.placement.begin(), c.placement.end());
    EXPECT_EQ(tiles.size(), space.cores) << "duplicate placement tile";
    for (const std::uint8_t t : c.placement)
        EXPECT_LT(t, space.tileCount);
    const std::uint32_t den = space.rungs[c.rung].dutySteps;
    for (const std::uint16_t s : c.freqStep) {
        EXPECT_GE(s, 1u);
        EXPECT_LE(s, den);
    }
    Candidate again = c;
    canonicalizeCandidate(space, again);
    EXPECT_TRUE(again == c) << "canonicalize must be idempotent";
}

TEST(SearchSpace, DefaultSpaceIsAWellFormedLadder)
{
    const SearchSpace space = space4();
    ASSERT_EQ(space.cores, 4u);
    ASSERT_EQ(space.tileCount, 25u);
    ASSERT_EQ(space.rungs.size(), 7u); // 0.75 V .. 1.05 V in 50 mV
    for (std::size_t i = 0; i < space.rungs.size(); ++i) {
        EXPECT_GT(space.rungs[i].freqMhz, 0.0);
        EXPECT_GE(space.rungs[i].dutySteps, 1u);
        if (i > 0) {
            EXPECT_GT(space.rungs[i].vddV, space.rungs[i - 1].vddV);
            EXPECT_GE(space.rungs[i].freqMhz, space.rungs[i - 1].freqMhz);
        }
    }
    EXPECT_GT(exhaustiveSize(space), 1e9);
}

TEST(SearchSpace, CanonicalizeClampsRepairsAndIsIdempotent)
{
    const SearchSpace space = space4();
    Candidate c;
    c.rung = 200;                      // out of range → last rung
    c.placement = {7, 7, 99, 3};       // dup + out-of-range tiles
    c.freqStep = {0, 60000, 5};        // under/over range, short
    canonicalizeCandidate(space, c);
    expectCanonical(space, c);
    EXPECT_EQ(c.rung, space.rungs.size() - 1);
    // First occurrences survive; the rest repair to lowest-unused.
    EXPECT_EQ(c.placement[0], 7);
    EXPECT_EQ(c.placement[1], 3);
    EXPECT_EQ(c.placement[2], 0);
    EXPECT_EQ(c.placement[3], 1);
}

TEST(SearchSpace, CandidateKeysAreStableAndSeparating)
{
    const SearchSpace space = space4();
    Rng rng(42);
    const Candidate a = randomCandidate(space, rng);
    Candidate b = a;
    EXPECT_EQ(candidateKey(a), candidateKey(b));
    EXPECT_EQ(candidateBytes(a), candidateBytes(b));

    b.freqStep[0] = b.freqStep[0] == 1 ? 2 : 1;
    EXPECT_NE(candidateKey(a), candidateKey(b));

    Candidate c = a;
    std::swap(c.placement[0], c.placement[1]);
    EXPECT_NE(candidateKey(a), candidateKey(c))
        << "placement order is part of the identity (position = core)";
}

TEST(SearchSpace, RandomCandidatesAreCanonicalAndSeedDeterministic)
{
    const SearchSpace space = space4();
    Rng a(7), b(7), other(8);
    bool diverged = false;
    for (int i = 0; i < 64; ++i) {
        const Candidate ca = randomCandidate(space, a);
        expectCanonical(space, ca);
        EXPECT_TRUE(ca == randomCandidate(space, b));
        diverged = diverged || !(ca == randomCandidate(space, other));
    }
    EXPECT_TRUE(diverged) << "different seeds should differ somewhere";
}

TEST(SearchSpace, MutationsPreserveCanonicalInvariants)
{
    const SearchSpace space = space4();
    Rng rng(3);
    Candidate c = randomCandidate(space, rng);
    bool changed = false;
    for (int i = 0; i < 256; ++i) {
        const Candidate before = c;
        mutateCandidate(space, c, rng);
        expectCanonical(space, c);
        // A boundary freq-nudge may clamp back in place; across many
        // moves the candidate must still actually move.
        changed = changed || !(c == before);
    }
    EXPECT_TRUE(changed);
}

TEST(SearchSpace, DefaultCandidateIsFullDutyIdentityPlacement)
{
    const SearchSpace space = space4();
    for (std::uint8_t r = 0; r < space.rungs.size(); ++r) {
        const Candidate c = defaultCandidate(space, r);
        expectCanonical(space, c);
        EXPECT_EQ(c.rung, r);
        for (std::uint32_t i = 0; i < space.cores; ++i) {
            EXPECT_EQ(c.placement[i], i);
            EXPECT_EQ(c.freqStep[i], space.rungs[r].dutySteps);
        }
    }
}

TEST(SearchSpace, SeedCandidatesSpreadAcrossTheRungLadder)
{
    const SearchSpace space = space4();
    const auto rung_count =
        static_cast<std::uint32_t>(space.rungs.size());

    // Asking for at least one per rung yields the whole ladder.
    const std::vector<Candidate> all = seedCandidates(space, 32);
    ASSERT_EQ(all.size(), rung_count);
    for (std::uint32_t i = 0; i < rung_count; ++i)
        EXPECT_EQ(all[i].rung, i);

    // Two seeds hit both ends; one lands mid-ladder.
    const std::vector<Candidate> two = seedCandidates(space, 2);
    ASSERT_EQ(two.size(), 2u);
    EXPECT_EQ(two[0].rung, 0u);
    EXPECT_EQ(two[1].rung, rung_count - 1);
    const std::vector<Candidate> one = seedCandidates(space, 1);
    ASSERT_EQ(one.size(), 1u);
    EXPECT_EQ(one[0].rung, (rung_count - 1) / 2);

    EXPECT_TRUE(seedCandidates(space, 0).empty());
}

TEST(SearchSpace, EquivalentCandidatesShareOneServiceCacheKey)
{
    const SearchSpace space = space4();
    service::ExperimentRequest base;
    base.chipId = 2;
    base.workload.bench =
        static_cast<std::uint16_t>(workloads::Microbench::Phased);
    base.workload.iterations = 1;

    Rng rng(11);
    const Candidate canon = randomCandidate(space, rng);
    Candidate messy = canon;
    messy.placement.push_back(canon.placement[0]); // dup → dropped
    messy.freqStep.push_back(9);                   // excess → dropped

    const service::ExperimentRequest ra = toRequest(space, canon, base);
    const service::ExperimentRequest rb = toRequest(space, messy, base);
    EXPECT_EQ(ra.cacheKey(), rb.cacheKey())
        << "equal canonical candidates must be one cache entry";

    Candidate other = canon;
    mutateCandidate(space, other, rng);
    EXPECT_NE(toRequest(space, other, base).cacheKey(), ra.cacheKey());
}

TEST(SearchObjective, ScoresBandFeasibility)
{
    Evaluation ok;
    ok.valid = true;
    ok.completed = true;
    ok.insts = 1000;
    ok.seconds = 2.0;
    ok.energyJ = 4.0;
    ok.epi = ok.energyJ / static_cast<double>(ok.insts);
    ok.avgPowerW = ok.energyJ / ok.seconds;

    Objective epi;
    epi.goal = Goal::MinEpi;
    EXPECT_DOUBLE_EQ(scoreEvaluation(epi, ok), ok.epi);

    Evaluation bad = ok;
    bad.valid = false;
    EXPECT_EQ(scoreEvaluation(epi, bad), kInvalidScore);
    bad = ok;
    bad.completed = false;
    EXPECT_EQ(scoreEvaluation(epi, bad), kInvalidScore);

    Objective capped;
    capped.goal = Goal::MinEnergyCapped;
    capped.powerCapW = 3.0; // avgPower 2.0 → feasible
    EXPECT_DOUBLE_EQ(scoreEvaluation(capped, ok), ok.energyJ);
    capped.powerCapW = 1.0; // violated by 1.0 → infeasible band
    EXPECT_GE(scoreEvaluation(capped, ok), kInfeasibleBase);
    EXPECT_LT(scoreEvaluation(capped, ok), kInvalidScore);

    Objective tput;
    tput.goal = Goal::MaxThroughputDeadline;
    tput.deadlineS = 3.0; // met → negative throughput (lower = faster)
    EXPECT_DOUBLE_EQ(scoreEvaluation(tput, ok), -500.0);
    tput.deadlineS = 1.0; // missed → infeasible band
    EXPECT_GE(scoreEvaluation(tput, ok), kInfeasibleBase);

    // Band ordering: feasible < infeasible < invalid, always.
    EXPECT_LT(scoreEvaluation(epi, ok), kInfeasibleBase);
}

TEST(SearchObjective, GoalNamesRoundTrip)
{
    for (const Goal g : {Goal::MinEpi, Goal::MinEnergyCapped,
                         Goal::MaxThroughputDeadline}) {
        EXPECT_EQ(goalFromName(goalName(g)), g);
    }
    EXPECT_THROW(goalFromName("maximize-vibes"), std::invalid_argument);
}

TEST(Searcher, FactoryKnowsExactlyTheAdvertisedEngines)
{
    for (const std::string &name : searcherNames()) {
        EXPECT_EQ(makeSearcher(name)->name(), name);
    }
    EXPECT_THROW(makeSearcher("gradient-descent"), std::invalid_argument);
    EXPECT_THROW(makeSearcher(""), std::invalid_argument);
}

TEST(Searcher, TrajectoryCsvIsHeaderPlusOneLinePerPoint)
{
    SearchResult r;
    r.trajectory = {{6, 0.5}, {12, 0.25}};
    const std::string csv = trajectoryCsv(r);
    EXPECT_EQ(csv.substr(0, 24), "oracle_calls,best_score\n");
    EXPECT_NE(csv.find("\n6,"), std::string::npos);
    EXPECT_NE(csv.find("\n12,"), std::string::npos);
}

} // namespace
