/**
 * @file
 * Checkpoint/restore suite (DESIGN.md §10).
 *
 * The contract under test: a run checkpointed at cycle N and resumed
 * in a fresh process-equivalent System produces *bit-identical*
 * results to the uninterrupted run — ledger sums and per-tile energies
 * compared as raw IEEE-754 bit patterns, telemetry CSV exports
 * compared byte for byte — under either fastPath setting, and even
 * across engines (save fast, resume legacy).  Malformed images
 * (truncation, corruption, bad magic, version or config mismatch) must
 * fail with ckpt::CheckpointError, never undefined behaviour.
 */

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "arch/piton_chip.hh"
#include "checkpoint/archive.hh"
#include "governor/governor.hh"
#include "chip/chip_instance.hh"
#include "config/piton_params.hh"
#include "isa/assembler.hh"
#include "power/energy_model.hh"
#include "sim/system.hh"
#include "sim/warm_start.hh"
#include "telemetry/export.hh"
#include "telemetry/recorder.hh"
#include "telemetry/schema.hh"
#include "workloads/microbenchmarks.hh"

namespace
{

using namespace piton;

std::uint64_t
bitsOf(double d)
{
    std::uint64_t u = 0;
    std::memcpy(&u, &d, sizeof(u));
    return u;
}

/** Everything observable about a System run, FP values as raw bits so
 *  EXPECT_EQ is exact — the checkpoint promise is bit-identity, not
 *  tolerance. */
struct SystemFingerprint
{
    std::vector<std::uint64_t> windowBits; ///< per-window rail powers
    std::vector<std::uint64_t> ledgerBits;
    std::vector<std::uint64_t> tileBits;
    std::uint64_t sampleClockBits = 0;
    std::uint64_t insts = 0;
    Cycle now = 0;
    std::string csv; ///< full telemetry export

    bool
    operator==(const SystemFingerprint &o) const
    {
        return windowBits == o.windowBits && ledgerBits == o.ledgerBits
               && tileBits == o.tileBits
               && sampleClockBits == o.sampleClockBits && insts == o.insts
               && now == o.now && csv == o.csv;
    }
};

void
recordWindows(sim::System &sys, std::uint32_t windows,
              SystemFingerprint &fp)
{
    for (std::uint32_t w = 0; w < windows; ++w) {
        const auto p =
            sys.windowTruePowers(sys.options().cyclesPerSample);
        for (const double v : p)
            fp.windowBits.push_back(bitsOf(v));
    }
}

void
finishFingerprint(sim::System &sys, const telemetry::TelemetryRecorder &rec,
                  SystemFingerprint &fp)
{
    const auto &ledger = sys.pitonChip().ledger();
    for (std::size_t c = 0; c < power::kNumCategories; ++c)
        for (std::size_t rail = 0; rail < power::kNumRails; ++rail)
            fp.ledgerBits.push_back(
                bitsOf(ledger.category(static_cast<power::Category>(c))
                           .get(static_cast<power::Rail>(rail))));
    for (std::size_t rail = 0; rail < power::kNumRails; ++rail)
        fp.ledgerBits.push_back(
            bitsOf(ledger.total().get(static_cast<power::Rail>(rail))));
    for (const double e : sys.pitonChip().tileCoreEnergyJ())
        fp.tileBits.push_back(bitsOf(e));
    fp.sampleClockBits = bitsOf(sys.sampleClockS());
    fp.insts = sys.pitonChip().totalInsts();
    fp.now = sys.pitonChip().now();
    std::ostringstream os;
    telemetry::writeCsv(os, rec);
    fp.csv = os.str();
}

sim::SystemOptions
optsFor(bool fast_path)
{
    sim::SystemOptions opts;
    opts.fastPath = fast_path;
    return opts;
}

constexpr std::uint32_t kPrefixWindows = 5;
constexpr std::uint32_t kSuffixWindows = 5;

/** The uninterrupted reference: attach, run prefix + suffix windows. */
SystemFingerprint
runStraight(workloads::Microbench m, bool fast_path)
{
    sim::System sys(optsFor(fast_path));
    const auto programs = workloads::loadMicrobench(sys, m, 25, 2, 0);
    telemetry::TelemetryRecorder rec;
    sys.attachTelemetry(&rec);
    SystemFingerprint fp;
    recordWindows(sys, kPrefixWindows + kSuffixWindows, fp);
    finishFingerprint(sys, rec, fp);
    return fp;
}

/** Same run, interrupted: checkpoint after the prefix, restore into a
 *  fresh System (no loadMicrobench — program images travel in the
 *  checkpoint), finish the suffix there. */
SystemFingerprint
runInterrupted(workloads::Microbench m, bool save_fast, bool resume_fast)
{
    SystemFingerprint fp;
    std::vector<std::uint8_t> bytes;
    {
        sim::System sys(optsFor(save_fast));
        const auto programs =
            workloads::loadMicrobench(sys, m, 25, 2, 0);
        telemetry::TelemetryRecorder rec;
        sys.attachTelemetry(&rec);
        recordWindows(sys, kPrefixWindows, fp);
        bytes = sys.saveBytes();
    }
    sim::System resumed(optsFor(resume_fast));
    telemetry::TelemetryRecorder rec;
    resumed.attachTelemetry(&rec); // attach first, then restore
    resumed.restoreBytes(bytes);
    recordWindows(resumed, kSuffixWindows, fp);
    finishFingerprint(resumed, rec, fp);
    return fp;
}

class CheckpointRoundTrip
    : public ::testing::TestWithParam<std::tuple<workloads::Microbench, bool>>
{
};

TEST_P(CheckpointRoundTrip, ResumeIsBitIdentical)
{
    const auto [bench, fast] = GetParam();
    const auto straight = runStraight(bench, fast);
    const auto resumed = runInterrupted(bench, fast, fast);
    EXPECT_EQ(resumed.windowBits, straight.windowBits);
    EXPECT_EQ(resumed.ledgerBits, straight.ledgerBits);
    EXPECT_EQ(resumed.tileBits, straight.tileBits);
    EXPECT_EQ(resumed.sampleClockBits, straight.sampleClockBits);
    EXPECT_EQ(resumed.insts, straight.insts);
    EXPECT_EQ(resumed.now, straight.now);
    EXPECT_EQ(resumed.csv, straight.csv);
    EXPECT_TRUE(resumed == straight);
}

std::string
roundTripName(
    const ::testing::TestParamInfo<std::tuple<workloads::Microbench, bool>>
        &info)
{
    return std::string(workloads::microbenchName(std::get<0>(info.param)))
           + (std::get<1>(info.param) ? "Fast" : "Legacy");
}

INSTANTIATE_TEST_SUITE_P(
    AllMicrobenches, CheckpointRoundTrip,
    ::testing::Combine(::testing::Values(workloads::Microbench::Int,
                                         workloads::Microbench::HP,
                                         workloads::Microbench::Hist),
                       ::testing::Bool()),
    roundTripName);

/** fastPath is deliberately not fingerprinted: a checkpoint saved
 *  under the fast engine resumes bit-identically on the legacy one
 *  (both engines are bit-equivalent, see test_fastpath_equiv). */
TEST(CheckpointCrossEngine, SaveFastResumeLegacy)
{
    const auto straight = runStraight(workloads::Microbench::HP, true);
    const auto crossed =
        runInterrupted(workloads::Microbench::HP, true, false);
    EXPECT_TRUE(crossed == straight);
}

TEST(CheckpointCrossEngine, SaveLegacyResumeFast)
{
    const auto straight = runStraight(workloads::Microbench::Int, false);
    const auto crossed =
        runInterrupted(workloads::Microbench::Int, false, true);
    EXPECT_TRUE(crossed == straight);
}

/** Checkpointing at several different points of the same run must each
 *  resume onto the same trajectory. */
TEST(CheckpointRoundTripCycles, MultipleCheckpointCycles)
{
    const auto straight = runStraight(workloads::Microbench::Int, true);
    for (const std::uint32_t at : {1u, 4u, 9u}) {
        SystemFingerprint fp;
        std::vector<std::uint8_t> bytes;
        {
            sim::System sys(optsFor(true));
            const auto programs = workloads::loadMicrobench(
                sys, workloads::Microbench::Int, 25, 2, 0);
            telemetry::TelemetryRecorder rec;
            sys.attachTelemetry(&rec);
            recordWindows(sys, at, fp);
            bytes = sys.saveBytes();
        }
        sim::System resumed(optsFor(true));
        telemetry::TelemetryRecorder rec;
        resumed.attachTelemetry(&rec);
        resumed.restoreBytes(bytes);
        recordWindows(resumed,
                      kPrefixWindows + kSuffixWindows - at, fp);
        finishFingerprint(resumed, rec, fp);
        EXPECT_TRUE(fp == straight) << "checkpoint at window " << at;
    }
}

// ---- PitonChip-level save/restore (file round trip) ------------------

struct ChipFingerprint
{
    Cycle now = 0;
    std::uint64_t insts = 0;
    std::vector<std::uint64_t> ledgerBits;
    std::vector<std::uint64_t> tileBits;

    bool
    operator==(const ChipFingerprint &o) const
    {
        return now == o.now && insts == o.insts
               && ledgerBits == o.ledgerBits && tileBits == o.tileBits;
    }
};

ChipFingerprint
chipFingerprint(const arch::PitonChip &chip)
{
    ChipFingerprint f;
    f.now = chip.now();
    f.insts = chip.totalInsts();
    const auto &ledger = chip.ledger();
    for (std::size_t c = 0; c < power::kNumCategories; ++c)
        for (std::size_t rail = 0; rail < power::kNumRails; ++rail)
            f.ledgerBits.push_back(
                bitsOf(ledger.category(static_cast<power::Category>(c))
                           .get(static_cast<power::Rail>(rail))));
    for (const double e : chip.tileCoreEnergyJ())
        f.tileBits.push_back(bitsOf(e));
    return f;
}

isa::Program
chipTestProgram()
{
    return isa::assemble(R"(
        set 0x20000, %r1
        set 0, %r3
    loop:
        stx %r3, [%r1 + 0]
        ldx [%r1 + 0], %r4
        add %r3, 1, %r3
        cmp %r3, 3000
        bl loop
        halt
    )");
}

TEST(CheckpointChipLevel, FileRoundTripResumesBitIdentical)
{
    const std::string path = ::testing::TempDir() + "piton_chip.ckpt";
    const isa::Program p = chipTestProgram();

    config::PitonParams params;
    power::EnergyModel energy;
    arch::PitonChip chip(params, chip::makeChip(2), energy, 17);
    for (TileId tile = 0; tile < 4; ++tile)
        chip.loadProgram(tile, 0, &p);
    chip.run(5000);
    chip.save(path);
    chip.run(1'000'000);
    const ChipFingerprint straight = chipFingerprint(chip);

    power::EnergyModel energy2;
    arch::PitonChip resumed(params, chip::makeChip(2), energy2, 17);
    resumed.restore(path); // no loadProgram: images travel along
    resumed.run(1'000'000);
    const ChipFingerprint after = chipFingerprint(resumed);
    EXPECT_TRUE(after == straight);
    std::remove(path.c_str());
}

TEST(CheckpointChipLevel, MissingFileThrows)
{
    config::PitonParams params;
    power::EnergyModel energy;
    arch::PitonChip chip(params, chip::makeChip(2), energy, 17);
    EXPECT_THROW(
        chip.restore(::testing::TempDir() + "no_such_checkpoint.ckpt"),
        ckpt::CheckpointError);
}

TEST(CheckpointChipLevel, UnwritablePathThrows)
{
    config::PitonParams params;
    power::EnergyModel energy;
    arch::PitonChip chip(params, chip::makeChip(2), energy, 17);
    EXPECT_THROW(chip.save("/nonexistent_dir_piton/x.ckpt"),
                 ckpt::CheckpointError);
}

// ---- malformed images fail loudly, never UB --------------------------

std::vector<std::uint8_t>
smallImage()
{
    sim::System sys(optsFor(true));
    const auto programs = workloads::loadMicrobench(
        sys, workloads::Microbench::Int, 2, 1, 0);
    sys.windowTruePowers(sys.options().cyclesPerSample);
    return sys.saveBytes();
}

TEST(CheckpointMalformed, TruncationThrows)
{
    const auto bytes = smallImage();
    // Every truncation point must produce a clean error.  Stepping a
    // prime keeps the test fast while hitting headers, names, and
    // payloads alike.
    for (std::size_t n = 0; n < bytes.size(); n += 409) {
        std::vector<std::uint8_t> cut(bytes.begin(), bytes.begin() + n);
        sim::System sys(optsFor(true));
        EXPECT_THROW(sys.restoreBytes(cut), ckpt::CheckpointError)
            << "truncated to " << n << " bytes";
    }
}

TEST(CheckpointMalformed, BitFlipThrows)
{
    const auto bytes = smallImage();
    for (const std::size_t at :
         {std::size_t{20}, bytes.size() / 2, bytes.size() - 1}) {
        auto bad = bytes;
        bad[at] ^= 0x40;
        sim::System sys(optsFor(true));
        EXPECT_THROW(sys.restoreBytes(bad), ckpt::CheckpointError)
            << "bit flip at offset " << at;
    }
}

TEST(CheckpointMalformed, BadMagicThrows)
{
    auto bytes = smallImage();
    bytes[0] = 'X';
    sim::System sys(optsFor(true));
    try {
        sys.restoreBytes(bytes);
        FAIL() << "bad magic accepted";
    } catch (const ckpt::CheckpointError &e) {
        EXPECT_NE(std::string(e.what()).find("magic"), std::string::npos);
    }
}

TEST(CheckpointMalformed, VersionMismatchThrows)
{
    auto bytes = smallImage();
    bytes[8] ^= 0xFF; // format version u32 follows the 8-byte magic
    sim::System sys(optsFor(true));
    try {
        sys.restoreBytes(bytes);
        FAIL() << "version mismatch accepted";
    } catch (const ckpt::CheckpointError &e) {
        EXPECT_NE(std::string(e.what()).find("version"),
                  std::string::npos);
    }
}

TEST(CheckpointMalformed, TrailingGarbageThrows)
{
    auto bytes = smallImage();
    bytes.push_back(0xAB);
    sim::System sys(optsFor(true));
    EXPECT_THROW(sys.restoreBytes(bytes), ckpt::CheckpointError);
}

TEST(CheckpointMalformed, EmptyImageThrows)
{
    sim::System sys(optsFor(true));
    EXPECT_THROW(sys.restoreBytes({}), ckpt::CheckpointError);
}

TEST(CheckpointMalformed, ConfigMismatchThrows)
{
    const auto bytes = smallImage();
    sim::SystemOptions other = optsFor(true);
    other.vddV = 0.90; // fingerprinted operating point
    sim::System sys(other);
    EXPECT_THROW(sys.restoreBytes(bytes), ckpt::CheckpointError);
}

TEST(CheckpointMalformed, RecorderRicherThanImageThrows)
{
    std::vector<std::uint8_t> bytes;
    {
        sim::System sys(optsFor(true));
        telemetry::TelemetryRecorder rec;
        sys.attachTelemetry(&rec);
        bytes = sys.saveBytes();
    }
    sim::System sys(optsFor(true));
    telemetry::TelemetryRecorder rec;
    sys.attachTelemetry(&rec);
    rec.defineSeries("custom.extra", telemetry::Unit::Count,
                     telemetry::Downsample::Sum);
    EXPECT_THROW(sys.restoreBytes(bytes), ckpt::CheckpointError);
}

// ---- sharded-engine state: round trip, corruption, reset -------------

sim::SystemOptions
shardedOpts(unsigned engine_threads)
{
    sim::SystemOptions opts;
    opts.fastPath = true;
    opts.engineThreads = engine_threads;
    return opts;
}

/** A checkpoint saved from a sharded (8-thread) run must restore at
 *  any thread count — including into a *used* chip whose shard
 *  accounting (per-tile SoA ledgers, capture logs, round counters) is
 *  stale from a different workload — and resume bit-identically to the
 *  uninterrupted single-threaded run. */
TEST(CheckpointSharded, ThreadedSaveRestoresAtAnyThreadCount)
{
    const auto straight = runStraight(workloads::Microbench::Int, true);
    for (const unsigned resume_threads : {1u, 8u}) {
        SystemFingerprint fp;
        std::vector<std::uint8_t> bytes;
        {
            sim::System sys(shardedOpts(8));
            const auto programs = workloads::loadMicrobench(
                sys, workloads::Microbench::Int, 25, 2, 0);
            telemetry::TelemetryRecorder rec;
            sys.attachTelemetry(&rec);
            recordWindows(sys, kPrefixWindows, fp);
            bytes = sys.saveBytes();
        }
        sim::System resumed(shardedOpts(resume_threads));
        const auto decoy = workloads::loadMicrobench(
            resumed, workloads::Microbench::Hist, 25, 2, 0);
        resumed.pitonChip().run(10000); // dirty the shard state
        if (resume_threads > 1)
            EXPECT_GT(resumed.pitonChip().runAheadRounds(), 0u);
        telemetry::TelemetryRecorder rec;
        resumed.attachTelemetry(&rec);
        resumed.restoreBytes(bytes);
        EXPECT_EQ(resumed.pitonChip().runAheadRounds(), 0u);
        recordWindows(resumed, kSuffixWindows, fp);
        finishFingerprint(resumed, rec, fp);
        EXPECT_TRUE(fp == straight)
            << "resume threads=" << resume_threads;
    }
}

/** The chip.tile_energy section (format v2) is CRC-protected like any
 *  other: a flipped bit inside it must throw, never silently skew the
 *  per-tile accumulators. */
TEST(CheckpointSharded, TileEnergySectionCorruptionThrows)
{
    auto bytes = smallImage();
    static const char kName[] = "chip.tile_energy";
    const auto it = std::search(bytes.begin(), bytes.end(), kName,
                                kName + sizeof(kName) - 1);
    ASSERT_NE(it, bytes.end()) << "chip.tile_energy section missing";
    const std::size_t at =
        static_cast<std::size_t>(it - bytes.begin()) + sizeof(kName) + 16;
    ASSERT_LT(at, bytes.size());
    bytes[at] ^= 0x01;
    sim::System sys(optsFor(true));
    EXPECT_THROW(sys.restoreBytes(bytes), ckpt::CheckpointError);
}

/** resetEnergy() must clear every piece of sharded accounting: the
 *  global ledger, the per-tile SoA ledger, and the round counter. */
TEST(CheckpointSharded, ResetEnergyClearsShardState)
{
    const isa::Program p = chipTestProgram();
    config::PitonParams params;
    power::EnergyModel energy;
    arch::PitonChip chip(params, chip::makeChip(2), energy, 17);
    chip.setEngineThreads(8);
    for (TileId tile = 0; tile < 4; ++tile)
        chip.loadProgram(tile, 0, &p);
    chip.run(20000);
    EXPECT_GT(chip.runAheadRounds(), 0u);
    double accrued = 0.0;
    for (const double e : chip.tileCoreEnergyJ())
        accrued += e;
    EXPECT_GT(accrued, 0.0);

    chip.resetEnergy();
    EXPECT_EQ(chip.runAheadRounds(), 0u);
    for (const double e : chip.tileCoreEnergyJ())
        EXPECT_EQ(bitsOf(e), bitsOf(0.0));
    const auto &ledger = chip.ledger();
    for (std::size_t rail = 0; rail < power::kNumRails; ++rail)
        EXPECT_EQ(
            ledger.total().get(static_cast<power::Rail>(rail)), 0.0);
}

// ---- governed checkpoints (format v3: sys.governor section) ----------

governor::GovernorParams
govParamsFor(const std::string &policy)
{
    governor::GovernorParams p;
    p.policy = policy;
    p.epochWindows = 2;
    if (policy == "pidcap")
        p.capW = 2.0;
    return p;
}

/** Governed reference run: governor attached for the whole span. */
SystemFingerprint
governedStraight(const std::string &policy, std::uint32_t windows)
{
    sim::System sys(optsFor(true));
    const auto gov = governor::makeGovernor(govParamsFor(policy));
    sys.attachGovernor(gov.get());
    const auto programs =
        workloads::loadMicrobench(sys, workloads::Microbench::HP, 25, 2, 0);
    telemetry::TelemetryRecorder rec;
    sys.attachTelemetry(&rec);
    SystemFingerprint fp;
    recordWindows(sys, windows, fp);
    finishFingerprint(sys, rec, fp);
    return fp;
}

std::vector<std::uint8_t>
governedImage(const std::string &policy, std::uint32_t save_at,
              SystemFingerprint &fp)
{
    sim::System sys(optsFor(true));
    const auto gov = governor::makeGovernor(govParamsFor(policy));
    sys.attachGovernor(gov.get());
    const auto programs =
        workloads::loadMicrobench(sys, workloads::Microbench::HP, 25, 2, 0);
    telemetry::TelemetryRecorder rec;
    sys.attachTelemetry(&rec);
    recordWindows(sys, save_at, fp);
    return sys.saveBytes();
}

/** A governed run checkpointed at a control-epoch boundary (and, with
 *  an odd save point, mid-epoch — the accumulators travel too) must
 *  resume bit-identically: same window powers, ledger sums, and
 *  byte-identical telemetry including the governor.* epoch series. */
TEST(CheckpointGoverned, GovernedResumeIsBitIdentical)
{
    for (const char *policy : {"ondemand", "pidcap", "theas"}) {
        const auto straight = governedStraight(
            policy, kPrefixWindows + kSuffixWindows);
        // epochWindows=2: saving after 4 windows is an epoch boundary,
        // after 5 is mid-epoch with live accumulators.
        for (const std::uint32_t at : {4u, 5u}) {
            SystemFingerprint fp;
            const auto bytes = governedImage(policy, at, fp);
            sim::System resumed(optsFor(true));
            const auto gov =
                governor::makeGovernor(govParamsFor(policy));
            resumed.attachGovernor(gov.get()); // before restore
            telemetry::TelemetryRecorder rec;
            resumed.attachTelemetry(&rec);
            resumed.restoreBytes(bytes);
            recordWindows(resumed,
                          kPrefixWindows + kSuffixWindows - at, fp);
            finishFingerprint(resumed, rec, fp);
            EXPECT_TRUE(fp == straight)
                << policy << " saved at window " << at;
        }
    }
}

/** The governor policy is fingerprinted inside sys.governor: resuming
 *  under a different policy must fail loudly, not misinterpret the
 *  controller state. */
TEST(CheckpointGoverned, PolicyMismatchThrows)
{
    SystemFingerprint fp;
    const auto bytes = governedImage("ondemand", kPrefixWindows, fp);
    sim::System resumed(optsFor(true));
    const auto gov = governor::makeGovernor(govParamsFor("theas"));
    resumed.attachGovernor(gov.get());
    try {
        resumed.restoreBytes(bytes);
        FAIL() << "policy mismatch accepted";
    } catch (const ckpt::CheckpointError &e) {
        EXPECT_NE(std::string(e.what()).find("governor"),
                  std::string::npos);
    }
}

/** sys.governor is CRC-protected like every section: a flipped bit in
 *  its payload must throw, never skew the duty tables or PID state. */
TEST(CheckpointGoverned, GovernorSectionCorruptionThrows)
{
    SystemFingerprint fp;
    auto bytes = governedImage("pidcap", kPrefixWindows, fp);
    static const char kName[] = "sys.governor";
    const auto it = std::search(bytes.begin(), bytes.end(), kName,
                                kName + sizeof(kName) - 1);
    ASSERT_NE(it, bytes.end()) << "sys.governor section missing";
    const std::size_t at =
        static_cast<std::size_t>(it - bytes.begin()) + sizeof(kName) + 16;
    ASSERT_LT(at, bytes.size());
    bytes[at] ^= 0x01;
    sim::System resumed(optsFor(true));
    const auto gov = governor::makeGovernor(govParamsFor("pidcap"));
    resumed.attachGovernor(gov.get());
    EXPECT_THROW(resumed.restoreBytes(bytes), ckpt::CheckpointError);
}

/** Sections are located by name, so a pre-governor (ungoverned) image
 *  restores into a governed System: the control loop simply starts
 *  fresh, re-baselined against the restored chip counters. */
TEST(CheckpointGoverned, UngovernedImageRestoresIntoGovernedSystem)
{
    const auto bytes = smallImage();
    sim::System sys(optsFor(true));
    const auto gov = governor::makeGovernor(govParamsFor("ondemand"));
    sys.attachGovernor(gov.get());
    EXPECT_NO_THROW(sys.restoreBytes(bytes));
    EXPECT_EQ(sys.gatedTileCount(), 0u);
    // The governed loop runs from the restored state without tripping
    // any baseline assertion.
    sys.windowTruePowers(sys.options().cyclesPerSample);
    sys.windowTruePowers(sys.options().cyclesPerSample);
}

/** The reverse direction also loads: an ungoverned System skips the
 *  optional sys.governor section (the control-loop state is dropped,
 *  the machine state is intact). */
TEST(CheckpointGoverned, GovernedImageRestoresUngoverned)
{
    SystemFingerprint fp;
    const auto bytes = governedImage("theas", kPrefixWindows, fp);
    sim::System sys(optsFor(true));
    telemetry::TelemetryRecorder rec;
    sys.attachTelemetry(&rec);
    EXPECT_NO_THROW(sys.restoreBytes(bytes));
    EXPECT_EQ(sys.dvfsGovernor(), nullptr);
    EXPECT_EQ(sys.gatedTileCount(), 0u);
}

// ---- restore marker and warm-start semantics -------------------------

TEST(CheckpointTelemetry, RestoreMarkerIsOptIn)
{
    const auto bytes = smallImage();

    sim::System plain(optsFor(true));
    telemetry::TelemetryRecorder plain_rec;
    plain.attachTelemetry(&plain_rec);
    plain.restoreBytes(bytes);
    EXPECT_EQ(plain_rec.find(telemetry::schema::kEventRestore), nullptr);

    sim::System marked(optsFor(true));
    telemetry::TelemetryRecorder marked_rec;
    marked.attachTelemetry(&marked_rec);
    marked.restoreBytes(bytes, /*mark_telemetry_event=*/true);
    ASSERT_NE(marked_rec.find(telemetry::schema::kEventRestore), nullptr);
    EXPECT_EQ(marked_rec.sum(telemetry::schema::kEventRestore), 1.0);
}

TEST(CheckpointWarmStart, ForksMatchEachOtherAndColdRun)
{
    const sim::SystemOptions opts = optsFor(true);
    constexpr std::uint32_t kWarm = 6, kMeasure = 4;

    sim::SweepWarmStart ws = [&] {
        sim::System donor(opts);
        const auto programs = workloads::loadMicrobench(
            donor, workloads::Microbench::HP, 4, 2, 0);
        for (std::uint32_t w = 0; w < kWarm; ++w)
            donor.windowTruePowers(donor.options().cyclesPerSample);
        return sim::SweepWarmStart::capture(donor);
    }();

    auto run_fork = [&] {
        telemetry::TelemetryRecorder rec;
        const auto sys = ws.fork(rec);
        SystemFingerprint fp;
        recordWindows(*sys, kMeasure, fp);
        finishFingerprint(*sys, rec, fp);
        return fp;
    };
    const SystemFingerprint fork1 = run_fork();
    const SystemFingerprint fork2 = run_fork();
    EXPECT_TRUE(fork1 == fork2);

    // Cold flow: re-simulate the prefix, attach after it — the
    // restore re-baselines the deltas to match this exactly.
    sim::System cold(opts);
    const auto programs = workloads::loadMicrobench(
        cold, workloads::Microbench::HP, 4, 2, 0);
    for (std::uint32_t w = 0; w < kWarm; ++w)
        cold.windowTruePowers(cold.options().cyclesPerSample);
    telemetry::TelemetryRecorder rec;
    cold.attachTelemetry(&rec);
    SystemFingerprint cold_fp;
    recordWindows(cold, kMeasure, cold_fp);
    finishFingerprint(cold, rec, cold_fp);
    EXPECT_TRUE(fork1 == cold_fp);
}

TEST(CheckpointWarmStart, FromImageRoundTrips)
{
    sim::System donor(optsFor(true));
    const auto programs = workloads::loadMicrobench(
        donor, workloads::Microbench::Int, 2, 1, 0);
    donor.windowTruePowers(donor.options().cyclesPerSample);
    const sim::SweepWarmStart ws = sim::SweepWarmStart::capture(donor);

    const sim::SweepWarmStart rebuilt =
        sim::SweepWarmStart::fromImage(ws.options(), ws.bytes());
    const auto a = ws.fork();
    const auto b = rebuilt.fork();
    const auto pa =
        a->windowTruePowers(a->options().cyclesPerSample);
    const auto pb =
        b->windowTruePowers(b->options().cyclesPerSample);
    for (std::size_t i = 0; i < pa.size(); ++i)
        EXPECT_EQ(bitsOf(pa[i]), bitsOf(pb[i]));
}

} // namespace
