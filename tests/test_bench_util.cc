/**
 * @file
 * parseBenchArgs contract: the common bench parser accepts exactly the
 * documented flag set (plus the caller's allow-list) and hard-errors —
 * usage to stderr, exit 2 — on anything else.  Silent acceptance of a
 * misspelled flag would silently run the wrong experiment.
 */

#include <gtest/gtest.h>

#include <vector>

#include "../bench/bench_util.hh"

namespace
{

using piton::bench::BenchArgs;
using piton::bench::parseBenchArgs;

/** argv builder (parseBenchArgs wants mutable char**). */
class Argv
{
  public:
    explicit Argv(std::vector<std::string> args) : strings_(std::move(args))
    {
        for (auto &s : strings_)
            ptrs_.push_back(s.data());
    }

    int argc() const { return static_cast<int>(ptrs_.size()); }
    char **argv() { return ptrs_.data(); }

  private:
    std::vector<std::string> strings_;
    std::vector<char *> ptrs_;
};

TEST(BenchUtil, ParsesTheCommonFlagSet)
{
    Argv a({"bench", "--samples", "32", "--threads", "4", "--out", "/tmp/x",
            "--checkpoint-every", "10", "--checkpoint-out", "ck.bin",
            "--resume-from", "old.bin"});
    const BenchArgs args = parseBenchArgs(a.argc(), a.argv());
    EXPECT_EQ(args.samples, 32u);
    EXPECT_EQ(args.threads, 4u);
    EXPECT_EQ(args.outDir, "/tmp/x");
    EXPECT_EQ(args.checkpointEvery, 10u);
    EXPECT_EQ(args.checkpointOut, "ck.bin");
    EXPECT_EQ(args.resumeFrom, "old.bin");
}

TEST(BenchUtil, DefaultsApplyWithoutFlags)
{
    Argv a({"bench"});
    const BenchArgs args = parseBenchArgs(a.argc(), a.argv(), 64, 2);
    EXPECT_EQ(args.samples, 64u);
    EXPECT_EQ(args.threads, 2u);
    EXPECT_TRUE(args.outDir.empty());
}

TEST(BenchUtil, UnknownFlagIsAHardError)
{
    Argv a({"bench", "--sampels", "32"}); // typo'd flag
    EXPECT_EXIT(parseBenchArgs(a.argc(), a.argv()),
                testing::ExitedWithCode(2), "unknown flag");
}

TEST(BenchUtil, MissingValueIsAHardError)
{
    Argv a({"bench", "--samples"});
    EXPECT_EXIT(parseBenchArgs(a.argc(), a.argv()),
                testing::ExitedWithCode(2), "missing value");
}

TEST(BenchUtil, NonNumericValueIsAHardError)
{
    Argv a({"bench", "--threads", "many"});
    EXPECT_EXIT(parseBenchArgs(a.argc(), a.argv()),
                testing::ExitedWithCode(2), "bad numeric value");
}

TEST(BenchUtil, NegativeValueIsAHardError)
{
    Argv a({"bench", "--samples", "-3"});
    EXPECT_EXIT(parseBenchArgs(a.argc(), a.argv()),
                testing::ExitedWithCode(2), "");
}

TEST(BenchUtil, ExcessPositionalIsAHardError)
{
    Argv a({"bench", "chip2"});
    EXPECT_EXIT(parseBenchArgs(a.argc(), a.argv()),
                testing::ExitedWithCode(2), "unexpected argument");
}

TEST(BenchUtil, AllowListedExtrasParse)
{
    Argv a({"bench", "--full", "--port", "1234", "chip2"});
    const BenchArgs args = parseBenchArgs(a.argc(), a.argv(), 128, 1,
                                          {"--full"}, 1, {"--port"});
    EXPECT_TRUE(args.hasFlag("--full"));
    EXPECT_FALSE(args.hasFlag("--fast"));
    EXPECT_EQ(args.optionValue("--port"), "1234");
    EXPECT_EQ(args.optionValue("--host", "localhost"), "localhost");
    ASSERT_EQ(args.positionals.size(), 1u);
    EXPECT_EQ(args.positionals[0], "chip2");
}

TEST(BenchUtil, DuplicateExtraOptionIsAHardError)
{
    // Regression: this used to silently resolve last-one-wins, which
    // let a stale flag in a wrapper script shadow the intended value.
    Argv a({"bench", "--port", "1", "--port", "2"});
    EXPECT_EXIT(parseBenchArgs(a.argc(), a.argv(), 128, 1, {}, 0,
                               {"--port"}),
                testing::ExitedWithCode(2), "duplicate flag");
}

TEST(BenchUtil, DuplicateCommonFlagIsAHardError)
{
    Argv a({"bench", "--samples", "8", "--samples", "16"});
    EXPECT_EXIT(parseBenchArgs(a.argc(), a.argv()),
                testing::ExitedWithCode(2), "duplicate flag");
}

TEST(BenchUtil, DuplicateBooleanExtraIsAHardError)
{
    Argv a({"bench", "--full", "--full"});
    EXPECT_EXIT(parseBenchArgs(a.argc(), a.argv(), 128, 1, {"--full"}),
                testing::ExitedWithCode(2), "duplicate flag");
}

TEST(BenchUtil, RepeatedPositionalsStillParse)
{
    // Only dash-flags dedup; positional values may legitimately repeat.
    Argv a({"bench", "x", "x"});
    const BenchArgs args = parseBenchArgs(a.argc(), a.argv(), 128, 1, {}, 2);
    ASSERT_EQ(args.positionals.size(), 2u);
}

TEST(BenchUtil, ExtraOptionMissingValueIsAHardError)
{
    Argv a({"bench", "--port"});
    EXPECT_EXIT(parseBenchArgs(a.argc(), a.argv(), 128, 1, {}, 0,
                               {"--port"}),
                testing::ExitedWithCode(2), "missing value");
}

TEST(BenchUtil, CheckpointEveryWithoutOutIsAHardError)
{
    Argv a({"bench", "--checkpoint-every", "10"});
    EXPECT_EXIT(parseBenchArgs(a.argc(), a.argv()),
                testing::ExitedWithCode(2),
                "--checkpoint-every requires");
}

TEST(BenchUtil, SampledWithResumeFromIsAHardError)
{
    Argv a({"bench", "--sampled", "--resume-from", "old.bin"});
    EXPECT_EXIT(parseBenchArgs(a.argc(), a.argv(), 128, 1, {"--sampled"}),
                testing::ExitedWithCode(2),
                "--sampled is incompatible with");
}

TEST(BenchUtil, SampledWithCheckpointOutIsAHardError)
{
    Argv a({"bench", "--sampled", "--checkpoint-out", "ck.bin"});
    EXPECT_EXIT(parseBenchArgs(a.argc(), a.argv(), 128, 1, {"--sampled"}),
                testing::ExitedWithCode(2),
                "--sampled is incompatible with");
}

TEST(BenchUtil, SampledAloneParses)
{
    Argv a({"bench", "--sampled"});
    const BenchArgs args =
        parseBenchArgs(a.argc(), a.argv(), 128, 1, {"--sampled"});
    EXPECT_TRUE(args.hasFlag("--sampled"));
}

TEST(BenchUtil, NonAllowListedExtraIsStillUnknown)
{
    Argv a({"bench", "--port", "1234"});
    EXPECT_EXIT(parseBenchArgs(a.argc(), a.argv(), 128, 1, {"--full"}, 0),
                testing::ExitedWithCode(2), "unknown flag");
}

} // namespace
