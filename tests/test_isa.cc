/**
 * @file
 * Unit tests for the ISA: encodings, ALU semantics, builder, assembler.
 */

#include <bit>

#include <gtest/gtest.h>

#include "isa/alu.hh"
#include "isa/assembler.hh"
#include "isa/instruction.hh"
#include "isa/program.hh"

namespace piton::isa
{
namespace
{

TEST(InstClassMap, MatchesPaperGroups)
{
    EXPECT_EQ(classOf(Opcode::Nop), InstClass::Nop);
    EXPECT_EQ(classOf(Opcode::And), InstClass::IntSimple);
    EXPECT_EQ(classOf(Opcode::Add), InstClass::IntSimple);
    EXPECT_EQ(classOf(Opcode::Mulx), InstClass::IntMul);
    EXPECT_EQ(classOf(Opcode::Sdivx), InstClass::IntDiv);
    EXPECT_EQ(classOf(Opcode::Faddd), InstClass::FpAddD);
    EXPECT_EQ(classOf(Opcode::Fdivs), InstClass::FpDivS);
    EXPECT_EQ(classOf(Opcode::Ldx), InstClass::Load);
    EXPECT_EQ(classOf(Opcode::Stx), InstClass::Store);
    EXPECT_EQ(classOf(Opcode::Casx), InstClass::Atomic);
    EXPECT_EQ(classOf(Opcode::Beq), InstClass::Branch);
}

TEST(LatencyTable, MatchesPaperTableVI)
{
    const LatencyTable t;
    EXPECT_EQ(t.latencyOf(InstClass::Nop), 1u);
    EXPECT_EQ(t.latencyOf(InstClass::IntSimple), 1u);
    EXPECT_EQ(t.latencyOf(InstClass::IntMul), 11u);
    EXPECT_EQ(t.latencyOf(InstClass::IntDiv), 72u);
    EXPECT_EQ(t.latencyOf(InstClass::FpAddD), 22u);
    EXPECT_EQ(t.latencyOf(InstClass::FpMulD), 25u);
    EXPECT_EQ(t.latencyOf(InstClass::FpDivD), 79u);
    EXPECT_EQ(t.latencyOf(InstClass::FpAddS), 22u);
    EXPECT_EQ(t.latencyOf(InstClass::FpMulS), 25u);
    EXPECT_EQ(t.latencyOf(InstClass::FpDivS), 50u);
    EXPECT_EQ(t.latencyOf(InstClass::Load), 3u);
    EXPECT_EQ(t.latencyOf(InstClass::Store), 10u);
    EXPECT_EQ(t.latencyOf(InstClass::Branch), 3u);
}

Instruction
mk(Opcode op)
{
    Instruction i;
    i.op = op;
    return i;
}

TEST(Alu, IntegerOps)
{
    EXPECT_EQ(evalAlu(mk(Opcode::Add), 2, 3).value, 5u);
    EXPECT_EQ(evalAlu(mk(Opcode::Sub), 2, 3).value,
              static_cast<RegVal>(-1));
    EXPECT_EQ(evalAlu(mk(Opcode::And), 0xF0F0, 0xFF00).value, 0xF000u);
    EXPECT_EQ(evalAlu(mk(Opcode::Or), 0xF0, 0x0F).value, 0xFFu);
    EXPECT_EQ(evalAlu(mk(Opcode::Xor), 0xFF, 0x0F).value, 0xF0u);
    EXPECT_EQ(evalAlu(mk(Opcode::Mulx), 7, 6).value, 42u);
    EXPECT_EQ(evalAlu(mk(Opcode::Sdivx), 42, 6).value, 7u);
    EXPECT_EQ(evalAlu(mk(Opcode::Sll), 1, 4).value, 16u);
    EXPECT_EQ(evalAlu(mk(Opcode::Srl), 16, 4).value, 1u);
}

TEST(Alu, SignedDivisionEdgeCases)
{
    EXPECT_EQ(evalAlu(mk(Opcode::Sdivx), 42, 0).value, 0u);
    const auto int_min =
        static_cast<RegVal>(std::numeric_limits<std::int64_t>::min());
    EXPECT_EQ(evalAlu(mk(Opcode::Sdivx), int_min,
                      static_cast<RegVal>(-1))
                  .value,
              int_min);
    EXPECT_EQ(evalAlu(mk(Opcode::Sdivx), static_cast<RegVal>(-42), 6).value,
              static_cast<RegVal>(-7));
}

TEST(Alu, DoublePrecision)
{
    const RegVal a = std::bit_cast<RegVal>(1.5);
    const RegVal b = std::bit_cast<RegVal>(2.25);
    EXPECT_DOUBLE_EQ(
        std::bit_cast<double>(evalAlu(mk(Opcode::Faddd), a, b).value), 3.75);
    EXPECT_DOUBLE_EQ(
        std::bit_cast<double>(evalAlu(mk(Opcode::Fmuld), a, b).value),
        3.375);
    EXPECT_DOUBLE_EQ(
        std::bit_cast<double>(evalAlu(mk(Opcode::Fdivd), b, a).value), 1.5);
}

TEST(Alu, SinglePrecisionLivesInLow32Bits)
{
    const auto a =
        static_cast<RegVal>(std::bit_cast<std::uint32_t>(1.5f));
    const auto b =
        static_cast<RegVal>(std::bit_cast<std::uint32_t>(2.5f));
    const RegVal sum = evalAlu(mk(Opcode::Fadds), a, b).value;
    EXPECT_EQ(sum >> 32, 0u);
    EXPECT_FLOAT_EQ(
        std::bit_cast<float>(static_cast<std::uint32_t>(sum)), 4.0f);
}

TEST(Alu, CmpSetsConditionCodes)
{
    auto r = evalAlu(mk(Opcode::Cmp), 5, 5);
    EXPECT_TRUE(r.setsCc);
    EXPECT_TRUE(r.cc.zero);
    EXPECT_FALSE(r.cc.negative);

    r = evalAlu(mk(Opcode::Cmp), 3, 5);
    EXPECT_FALSE(r.cc.zero);
    EXPECT_TRUE(r.cc.negative);

    r = evalAlu(mk(Opcode::Cmp), 7, 5);
    EXPECT_FALSE(r.cc.zero);
    EXPECT_FALSE(r.cc.negative);
}

TEST(Alu, BranchConditions)
{
    CondCodes eq{true, false};
    CondCodes lt{false, true};
    CondCodes gt{false, false};
    EXPECT_TRUE(branchTaken(Opcode::Beq, eq));
    EXPECT_FALSE(branchTaken(Opcode::Beq, lt));
    EXPECT_TRUE(branchTaken(Opcode::Bne, gt));
    EXPECT_FALSE(branchTaken(Opcode::Bne, eq));
    EXPECT_TRUE(branchTaken(Opcode::Bg, gt));
    EXPECT_FALSE(branchTaken(Opcode::Bg, eq));
    EXPECT_TRUE(branchTaken(Opcode::Bl, lt));
    EXPECT_FALSE(branchTaken(Opcode::Bl, gt));
    EXPECT_TRUE(branchTaken(Opcode::Ba, eq));
    EXPECT_TRUE(branchTaken(Opcode::Ba, gt));
}

TEST(Alu, RdhwidReturnsHwid)
{
    EXPECT_EQ(evalAlu(mk(Opcode::Rdhwid), 0, 0, 37).value, 37u);
}

TEST(ProgramBuilder, ResolvesBackwardAndForwardLabels)
{
    ProgramBuilder b;
    b.label("start")
        .addi(1, 1, 1)
        .cmpi(1, 10)
        .bl("start")
        .ba("end")
        .nop()
        .label("end")
        .halt();
    const Program p = b.build();
    ASSERT_EQ(p.size(), 6u);
    EXPECT_EQ(p.at(2).target, 0u); // bl start
    EXPECT_EQ(p.at(3).target, 5u); // ba end
    EXPECT_EQ(p.at(5).op, Opcode::Halt);
}

TEST(ProgramBuilder, UndefinedLabelIsFatal)
{
    ProgramBuilder b;
    b.ba("nowhere");
    EXPECT_EXIT(b.build(), testing::ExitedWithCode(1), "undefined label");
}

TEST(ProgramBuilder, PcAndFootprint)
{
    ProgramBuilder b(0x2000);
    b.nop().nop().nop();
    const Program p = b.build();
    EXPECT_EQ(p.baseAddr(), 0x2000u);
    EXPECT_EQ(p.pcOf(2), 0x2008u);
    EXPECT_EQ(p.footprintBytes(), 12u);
}

TEST(Assembler, FullProgramRoundTrip)
{
    const char *src = R"(
        ! increment until 10
        set 0, %r1
    loop:
        add %r1, 1, %r1
        cmp %r1, 10
        bl loop
        ldx [%r2 + 16], %r3
        stx %r3, [%r2 + 24]
        casx [%r4], %r5, %r6
        faddd %f0, %f2, %f4
        rdhwid %r7
        halt
    )";
    const Program p = assemble(src);
    ASSERT_EQ(p.size(), 10u);
    EXPECT_EQ(p.at(0).op, Opcode::SetImm);
    EXPECT_EQ(p.at(1).op, Opcode::Add);
    EXPECT_TRUE(p.at(1).useImm);
    EXPECT_EQ(p.at(1).rd, 1);
    EXPECT_EQ(p.at(3).op, Opcode::Bl);
    EXPECT_EQ(p.at(3).target, 1u);
    EXPECT_EQ(p.at(4).op, Opcode::Ldx);
    EXPECT_EQ(p.at(4).imm, 16);
    EXPECT_EQ(p.at(4).rd, 3);
    EXPECT_EQ(p.at(5).op, Opcode::Stx);
    EXPECT_EQ(p.at(5).rd, 3); // data register
    EXPECT_EQ(p.at(6).op, Opcode::Casx);
    EXPECT_EQ(p.at(7).op, Opcode::Faddd);
    EXPECT_TRUE(p.at(7).fp);
    EXPECT_EQ(p.at(7).rd, 4);
    EXPECT_EQ(p.at(9).op, Opcode::Halt);
}

TEST(Assembler, HexAndNegativeImmediates)
{
    const Program p = assemble(R"(
        set 0xAAAAAAAAAAAAAAAA, %r1
        add %r1, -8, %r2
        ldx [%r1 - 16], %r3
    )");
    EXPECT_EQ(static_cast<std::uint64_t>(p.at(0).imm),
              0xAAAAAAAAAAAAAAAAULL);
    EXPECT_EQ(p.at(1).imm, -8);
    EXPECT_EQ(p.at(2).imm, -16);
}

TEST(Assembler, ErrorsCarryLineNumbers)
{
    try {
        assemble("nop\nbogus %r1\n");
        FAIL() << "expected AsmError";
    } catch (const AsmError &e) {
        EXPECT_EQ(e.line(), 2);
    }
    EXPECT_THROW(assemble("add %r1, %r2\n"), AsmError);     // arity
    EXPECT_THROW(assemble("ldx %r1, %r2\n"), AsmError);     // not [..]
    EXPECT_THROW(assemble("add %r99, %r1, %r2\n"), AsmError); // bad reg
    // Undefined branch labels surface at build() via piton_fatal, which
    // terminates the process; covered by ProgramBuilder.UndefinedLabelIsFatal.
}

TEST(Assembler, CommentsAndBlankLinesIgnored)
{
    const Program p = assemble("\n  ! only a comment\n# another\nnop\n");
    EXPECT_EQ(p.size(), 1u);
}

TEST(Mnemonics, RoundTripNames)
{
    EXPECT_STREQ(mnemonic(Opcode::Sdivx), "sdivx");
    EXPECT_STREQ(mnemonic(Opcode::Faddd), "faddd");
    EXPECT_STREQ(className(InstClass::FpDivD), "fp-div-d");
    EXPECT_TRUE(isBranch(Opcode::Ba));
    EXPECT_FALSE(isBranch(Opcode::Add));
    EXPECT_TRUE(isMemory(Opcode::Casx));
    EXPECT_FALSE(isMemory(Opcode::Cmp));
}

} // namespace
} // namespace piton::isa
