/**
 * @file
 * Unit tests for the lumped-RC thermal model.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "thermal/thermal_model.hh"

namespace piton::thermal
{
namespace
{

TEST(ThermalModel, StartsAtAmbient)
{
    ThermalModel m;
    EXPECT_DOUBLE_EQ(m.dieTempC(), m.params().ambientC);
    EXPECT_DOUBLE_EQ(m.packageTempC(), m.params().ambientC);
}

TEST(ThermalModel, SteadyStateMatchesSeriesResistance)
{
    const ThermalModel m;
    const double p = 2.0;
    const ThermalState s = m.steadyState(p);
    const auto &prm = m.params();
    const double r_total =
        prm.dieToPackageR + prm.packageToSinkR + prm.sinkToAmbientR;
    EXPECT_NEAR(s.dieC, prm.ambientC + p * r_total, 1e-9);
    // Temperature ordering: die > package > sink > ambient.
    EXPECT_GT(s.dieC, s.packageC);
    EXPECT_GT(s.packageC, s.sinkC);
    EXPECT_GT(s.sinkC, prm.ambientC);
}

TEST(ThermalModel, TransientConvergesToSteadyState)
{
    ThermalModel m;
    const double p = 2.0;
    const ThermalState target = m.steadyState(p);
    for (int i = 0; i < 4000; ++i)
        m.step(p, 1.0);
    EXPECT_NEAR(m.dieTempC(), target.dieC, 0.05);
    EXPECT_NEAR(m.packageTempC(), target.packageC, 0.05);
}

TEST(ThermalModel, DieRespondsFasterThanPackage)
{
    ThermalModel m;
    m.step(2.0, 1.0); // one second of 2 W
    const double die_rise = m.dieTempC() - m.params().ambientC;
    const double pkg_rise = m.packageTempC() - m.params().ambientC;
    EXPECT_GT(die_rise, pkg_rise * 2.0);
}

TEST(ThermalModel, NoHeatSinkRunsHotter)
{
    ThermalModel with_sink;
    ThermalParams no_sink_params;
    no_sink_params.hasHeatSink = false;
    ThermalModel no_sink(no_sink_params);
    const double p = 0.6; // Fig. 17 operating point
    EXPECT_GT(no_sink.steadyState(p).packageC,
              with_sink.steadyState(p).packageC + 5.0);
}

TEST(ThermalModel, FanTiltRaisesTemperature)
{
    ThermalParams params;
    params.hasHeatSink = false;
    ThermalModel m(params);
    const double p = 0.6;
    m.setFanEffectiveness(1.0);
    const double t_full = m.steadyState(p).packageC;
    m.setFanEffectiveness(0.5);
    const double t_half = m.steadyState(p).packageC;
    m.setFanEffectiveness(0.0);
    const double t_off = m.steadyState(p).packageC;
    EXPECT_LT(t_full, t_half);
    EXPECT_LT(t_half, t_off);
    // The fan-driven resistance change is bounded so the exponential
    // leakage-thermal loop keeps a stable operating point (Fig. 17's
    // wider span comes mostly from thread count + leakage feedback).
    EXPECT_LT(t_full, 40.0);
    EXPECT_GT(t_off, t_full + 1.5);
}

TEST(ThermalModel, CoolingAfterPowerOff)
{
    ThermalModel m;
    for (int i = 0; i < 2000; ++i)
        m.step(3.0, 1.0);
    const double hot = m.dieTempC();
    for (int i = 0; i < 8000; ++i)
        m.step(0.0, 1.0);
    EXPECT_LT(m.dieTempC(), hot);
    EXPECT_NEAR(m.dieTempC(), m.params().ambientC, 0.2);
}

TEST(ThermalModel, ThermalHysteresisUnderPhasedLoad)
{
    // Alternating power phases trace different (P, T) paths on heating
    // vs cooling — the loop of Fig. 18.
    ThermalParams params;
    params.hasHeatSink = false;
    ThermalModel m(params);
    // Warm up under mean power.
    for (int i = 0; i < 5000; ++i)
        m.step(0.65, 1.0);
    double t_end_high = 0.0, t_end_low = 0.0;
    for (int cycle = 0; cycle < 4; ++cycle) {
        for (int i = 0; i < 10; ++i)
            m.step(0.72, 1.0);
        t_end_high = m.packageTempC();
        for (int i = 0; i < 10; ++i)
            m.step(0.62, 1.0);
        t_end_low = m.packageTempC();
    }
    EXPECT_GT(t_end_high, t_end_low); // loop has nonzero area
    EXPECT_LT(t_end_high - t_end_low, 2.0); // but is a narrow band
}

TEST(ThermalModel, ConvergesFromDifferentInitialTemperatures)
{
    // The steady state is a global attractor: trajectories started
    // cold (ambient) and hot (well above the equilibrium) must both
    // settle onto steadyState(p), and onto each other.
    const double p = 1.5;
    ThermalModel cold;
    ThermalModel hot;
    hot.setState({90.0, 85.0, 80.0});
    const ThermalState target = cold.steadyState(p);
    for (int i = 0; i < 6000; ++i) {
        cold.step(p, 1.0);
        hot.step(p, 1.0);
    }
    EXPECT_NEAR(cold.dieTempC(), target.dieC, 0.05);
    EXPECT_NEAR(cold.packageTempC(), target.packageC, 0.05);
    EXPECT_NEAR(hot.dieTempC(), target.dieC, 0.05);
    EXPECT_NEAR(hot.packageTempC(), target.packageC, 0.05);
    EXPECT_NEAR(cold.dieTempC(), hot.dieTempC(), 1e-3);
    EXPECT_NEAR(cold.packageTempC(), hot.packageTempC(), 1e-3);
}

TEST(ThermalModel, SampledTransientMatchesClosedFormTwoNode)
{
    // Without the heat sink the network is a 2-node linear ODE with an
    // exact solution: x' = A x for the deviation x from steady state,
    //   A = [ -1/(Cd*Rdp)          1/(Cd*Rdp)           ]
    //       [  1/(Cp*Rdp)  -(1/Rdp + 1/Rpa)/Cp          ]
    // Diagonalize A (2x2, distinct real eigenvalues) and compare the
    // Euler-integrated trajectory against the eigenmode solution at
    // sampled times.
    ThermalParams prm;
    prm.hasHeatSink = false;
    prm.fanEffectiveness = 1.0; // convection factor = 1 exactly
    ThermalModel m(prm);
    const double p = 0.6;
    const double cd = prm.dieCap, cp = prm.packageCap;
    const double rdp = prm.dieToPackageR;
    const double rpa = prm.packageToAmbientNoSinkR;

    const double a11 = -1.0 / (cd * rdp);
    const double a12 = 1.0 / (cd * rdp);
    const double a21 = 1.0 / (cp * rdp);
    const double a22 = -(1.0 / rdp + 1.0 / rpa) / cp;
    const double tr = a11 + a22;
    const double det = a11 * a22 - a12 * a21;
    const double disc = std::sqrt(tr * tr - 4.0 * det);
    const double l1 = 0.5 * (tr + disc);
    const double l2 = 0.5 * (tr - disc);
    ASSERT_LT(l1, 0.0); // both modes decay
    ASSERT_LT(l2, l1);  // distinct: fast die mode, slow package mode
    // Eigenvectors from row 1 of (A - l*I): v = (a12, l - a11).
    const double v1x = a12, v1y = l1 - a11;
    const double v2x = a12, v2y = l2 - a11;

    // Initial deviation: both nodes at ambient, below steady state.
    const ThermalState ss = m.steadyState(p);
    const double x0 = prm.ambientC - ss.dieC;
    const double y0 = prm.ambientC - ss.packageC;
    // Solve c1*v1 + c2*v2 = (x0, y0).
    const double den = v1x * v2y - v2x * v1y;
    const double c1 = (x0 * v2y - v2x * y0) / den;
    const double c2 = (v1x * y0 - x0 * v1y) / den;

    const double dt = 0.5;
    double t = 0.0;
    for (int i = 0; i < 120; ++i) {
        m.step(p, dt);
        t += dt;
        const double e1 = c1 * std::exp(l1 * t);
        const double e2 = c2 * std::exp(l2 * t);
        const double die_exact = ss.dieC + e1 * v1x + e2 * v2x;
        const double pkg_exact = ss.packageC + e1 * v1y + e2 * v2y;
        EXPECT_NEAR(m.dieTempC(), die_exact, 0.15)
            << "die at t=" << t;
        EXPECT_NEAR(m.packageTempC(), pkg_exact, 0.15)
            << "package at t=" << t;
    }
}

TEST(ThermalModel, StepRejectsNonPositiveDt)
{
    ThermalModel m;
    EXPECT_THROW(m.step(1.0, 0.0), std::logic_error);
}

} // namespace
} // namespace piton::thermal
