/**
 * @file
 * Unit tests for the lumped-RC thermal model.
 */

#include <gtest/gtest.h>

#include "thermal/thermal_model.hh"

namespace piton::thermal
{
namespace
{

TEST(ThermalModel, StartsAtAmbient)
{
    ThermalModel m;
    EXPECT_DOUBLE_EQ(m.dieTempC(), m.params().ambientC);
    EXPECT_DOUBLE_EQ(m.packageTempC(), m.params().ambientC);
}

TEST(ThermalModel, SteadyStateMatchesSeriesResistance)
{
    const ThermalModel m;
    const double p = 2.0;
    const ThermalState s = m.steadyState(p);
    const auto &prm = m.params();
    const double r_total =
        prm.dieToPackageR + prm.packageToSinkR + prm.sinkToAmbientR;
    EXPECT_NEAR(s.dieC, prm.ambientC + p * r_total, 1e-9);
    // Temperature ordering: die > package > sink > ambient.
    EXPECT_GT(s.dieC, s.packageC);
    EXPECT_GT(s.packageC, s.sinkC);
    EXPECT_GT(s.sinkC, prm.ambientC);
}

TEST(ThermalModel, TransientConvergesToSteadyState)
{
    ThermalModel m;
    const double p = 2.0;
    const ThermalState target = m.steadyState(p);
    for (int i = 0; i < 4000; ++i)
        m.step(p, 1.0);
    EXPECT_NEAR(m.dieTempC(), target.dieC, 0.05);
    EXPECT_NEAR(m.packageTempC(), target.packageC, 0.05);
}

TEST(ThermalModel, DieRespondsFasterThanPackage)
{
    ThermalModel m;
    m.step(2.0, 1.0); // one second of 2 W
    const double die_rise = m.dieTempC() - m.params().ambientC;
    const double pkg_rise = m.packageTempC() - m.params().ambientC;
    EXPECT_GT(die_rise, pkg_rise * 2.0);
}

TEST(ThermalModel, NoHeatSinkRunsHotter)
{
    ThermalModel with_sink;
    ThermalParams no_sink_params;
    no_sink_params.hasHeatSink = false;
    ThermalModel no_sink(no_sink_params);
    const double p = 0.6; // Fig. 17 operating point
    EXPECT_GT(no_sink.steadyState(p).packageC,
              with_sink.steadyState(p).packageC + 5.0);
}

TEST(ThermalModel, FanTiltRaisesTemperature)
{
    ThermalParams params;
    params.hasHeatSink = false;
    ThermalModel m(params);
    const double p = 0.6;
    m.setFanEffectiveness(1.0);
    const double t_full = m.steadyState(p).packageC;
    m.setFanEffectiveness(0.5);
    const double t_half = m.steadyState(p).packageC;
    m.setFanEffectiveness(0.0);
    const double t_off = m.steadyState(p).packageC;
    EXPECT_LT(t_full, t_half);
    EXPECT_LT(t_half, t_off);
    // The fan-driven resistance change is bounded so the exponential
    // leakage-thermal loop keeps a stable operating point (Fig. 17's
    // wider span comes mostly from thread count + leakage feedback).
    EXPECT_LT(t_full, 40.0);
    EXPECT_GT(t_off, t_full + 1.5);
}

TEST(ThermalModel, CoolingAfterPowerOff)
{
    ThermalModel m;
    for (int i = 0; i < 2000; ++i)
        m.step(3.0, 1.0);
    const double hot = m.dieTempC();
    for (int i = 0; i < 8000; ++i)
        m.step(0.0, 1.0);
    EXPECT_LT(m.dieTempC(), hot);
    EXPECT_NEAR(m.dieTempC(), m.params().ambientC, 0.2);
}

TEST(ThermalModel, ThermalHysteresisUnderPhasedLoad)
{
    // Alternating power phases trace different (P, T) paths on heating
    // vs cooling — the loop of Fig. 18.
    ThermalParams params;
    params.hasHeatSink = false;
    ThermalModel m(params);
    // Warm up under mean power.
    for (int i = 0; i < 5000; ++i)
        m.step(0.65, 1.0);
    double t_end_high = 0.0, t_end_low = 0.0;
    for (int cycle = 0; cycle < 4; ++cycle) {
        for (int i = 0; i < 10; ++i)
            m.step(0.72, 1.0);
        t_end_high = m.packageTempC();
        for (int i = 0; i < 10; ++i)
            m.step(0.62, 1.0);
        t_end_low = m.packageTempC();
    }
    EXPECT_GT(t_end_high, t_end_low); // loop has nonzero area
    EXPECT_LT(t_end_high - t_end_low, 2.0); // but is a narrow band
}

TEST(ThermalModel, StepRejectsNonPositiveDt)
{
    ThermalModel m;
    EXPECT_THROW(m.step(1.0, 0.0), std::logic_error);
}

} // namespace
} // namespace piton::thermal
