/**
 * @file
 * Experiment-service suite (src/service/): wire codec and framing,
 * request canonicalization and cache keying, the sharded result cache
 * (eviction, single-flight, corruption rejection, disk spill), the
 * scheduler (byte-identical cache hits, shedding, deadlines,
 * cancellation, version-bump invalidation), warm-vs-cold sweep bit
 * identity, and the TCP server end to end against the in-process
 * client.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <thread>
#include <vector>

#include "core/vf_experiments.hh"
#include "service/cache.hh"
#include "service/client.hh"
#include "service/executor.hh"
#include "service/request.hh"
#include "service/response.hh"
#include "service/scheduler.hh"
#include "service/server.hh"
#include "service/wire.hh"
#include "workloads/microbenchmarks.hh"

namespace
{

using namespace piton;
using namespace piton::service;

CachePayload
payloadOf(std::vector<std::uint8_t> bytes)
{
    return std::make_shared<const std::vector<std::uint8_t>>(
        std::move(bytes));
}

/** A request small enough that a cold run stays in test-suite budget. */
ExperimentRequest
smallPowerRequest()
{
    ExperimentRequest req;
    req.kind = Kind::MeasurePower;
    req.workload.cores = 2;
    req.workload.threadsPerCore = 1;
    req.workload.totalElements = 256;
    req.samples = 4;
    req.warmupCycles = 4000;
    return req;
}

ExperimentRequest
smallSweepRequest()
{
    ExperimentRequest req;
    req.kind = Kind::Sweep;
    req.workload.cores = 2;
    req.workload.threadsPerCore = 1;
    req.workload.totalElements = 256;
    req.warmupCycles = 4000;
    req.tails = {{1.0, 2}, {0.5, 2}, {0.0, 2}};
    return req;
}

// ---- wire codec -----------------------------------------------------

TEST(ServiceWire, ScalarRoundTripIsByteExact)
{
    WireWriter w;
    w.u8(0xab);
    w.u16(0xbeef);
    w.u32(0xdeadbeefu);
    w.u64(0x0123456789abcdefULL);
    w.f64(-0.0);
    w.f64(1.0 / 3.0);
    w.str("piton");
    w.blob({1, 2, 3});
    const std::vector<std::uint8_t> bytes = w.take();

    WireReader r(bytes);
    EXPECT_EQ(r.u8(), 0xab);
    EXPECT_EQ(r.u16(), 0xbeef);
    EXPECT_EQ(r.u32(), 0xdeadbeefu);
    EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
    const double neg_zero = r.f64();
    EXPECT_EQ(neg_zero, 0.0);
    EXPECT_TRUE(std::signbit(neg_zero));
    EXPECT_EQ(r.f64(), 1.0 / 3.0); // exact: raw bit pattern
    EXPECT_EQ(r.str(), "piton");
    EXPECT_EQ(r.blob(), (std::vector<std::uint8_t>{1, 2, 3}));
    EXPECT_NO_THROW(r.expectEnd());
}

TEST(ServiceWire, TruncatedReadThrows)
{
    WireWriter w;
    w.u32(7);
    const std::vector<std::uint8_t> bytes = w.take();
    WireReader r(bytes);
    EXPECT_THROW(r.u64(), ServiceError);
}

TEST(ServiceWire, TrailingBytesThrow)
{
    WireWriter w;
    w.u32(7);
    w.u8(1);
    const std::vector<std::uint8_t> bytes = w.take();
    WireReader r(bytes);
    r.u32();
    EXPECT_THROW(r.expectEnd(), ServiceError);
}

TEST(ServiceWire, FrameRoundTripsThroughSplitFeeds)
{
    Frame in;
    in.type = FrameType::Request;
    in.requestId = 42;
    in.payload = {9, 8, 7, 6, 5};
    const std::vector<std::uint8_t> bytes = encodeFrame(in);

    // Feed byte by byte: the parser must reassemble across fragments.
    FrameParser parser;
    Frame out;
    for (std::size_t i = 0; i + 1 < bytes.size(); ++i) {
        parser.feed(&bytes[i], 1);
        EXPECT_FALSE(parser.next(out));
    }
    parser.feed(&bytes[bytes.size() - 1], 1);
    ASSERT_TRUE(parser.next(out));
    EXPECT_EQ(out.type, FrameType::Request);
    EXPECT_EQ(out.requestId, 42u);
    EXPECT_EQ(out.payload, in.payload);
    EXPECT_FALSE(parser.next(out));
}

TEST(ServiceWire, CorruptedFrameIsRejected)
{
    Frame in;
    in.type = FrameType::Response;
    in.requestId = 7;
    in.payload = {1, 2, 3, 4};
    std::vector<std::uint8_t> bytes = encodeFrame(in);
    bytes.back() ^= 0x40; // flip a payload bit: CRC must catch it

    FrameParser parser;
    parser.feed(bytes.data(), bytes.size());
    Frame out;
    EXPECT_THROW(parser.next(out), ServiceError);
}

TEST(ServiceWire, BadMagicIsRejected)
{
    Frame in;
    in.type = FrameType::Ping;
    std::vector<std::uint8_t> bytes = encodeFrame(in);
    bytes[0] ^= 0xff;
    FrameParser parser;
    parser.feed(bytes.data(), bytes.size());
    Frame out;
    EXPECT_THROW(parser.next(out), ServiceError);
}

// ---- requests and cache keys ---------------------------------------

TEST(ServiceRequest, EncodeDecodeRoundTrip)
{
    ExperimentRequest req = smallSweepRequest();
    req.deadlineMs = 1234;
    WireWriter w;
    req.encode(w);
    const std::vector<std::uint8_t> bytes = w.take();

    WireReader r(bytes);
    const ExperimentRequest back = ExperimentRequest::decode(r);
    EXPECT_NO_THROW(r.expectEnd());
    EXPECT_EQ(back.kind, req.kind);
    EXPECT_EQ(back.deadlineMs, 1234u);
    ASSERT_EQ(back.tails.size(), req.tails.size());
    EXPECT_EQ(back.tails[1].fanEffectiveness, 0.5);
    EXPECT_EQ(back.canonicalBytes(), req.canonicalBytes());
}

TEST(ServiceRequest, KindIrrelevantFieldsDoNotSplitTheCache)
{
    // MeasurePower ignores iterations and maxCycles.
    ExperimentRequest a = smallPowerRequest();
    ExperimentRequest b = a;
    b.workload.iterations = 999;
    b.maxCycles = 123;
    EXPECT_EQ(a.cacheKey(), b.cacheKey());

    // MeasureStatic ignores the entire workload.
    a.kind = b.kind = Kind::MeasureStatic;
    b.workload.cores = 7;
    b.workload.bench =
        static_cast<std::uint16_t>(workloads::Microbench::Hist);
    EXPECT_EQ(a.cacheKey(), b.cacheKey());

    // But fields the kind consumes must split it.
    ExperimentRequest c = smallPowerRequest();
    ExperimentRequest d = c;
    d.samples = c.samples + 1;
    EXPECT_NE(c.cacheKey(), d.cacheKey());
}

TEST(ServiceRequest, DeadlineIsQosNotIdentity)
{
    ExperimentRequest a = smallPowerRequest();
    ExperimentRequest b = a;
    b.deadlineMs = 50000;
    EXPECT_EQ(a.cacheKey(), b.cacheKey());
}

TEST(ServiceRequest, VersionSaltChangesEveryKey)
{
    const ExperimentRequest req = smallPowerRequest();
    EXPECT_NE(req.cacheKey(0), req.cacheKey(1));
    EXPECT_NE(req.prefixKey(0), req.prefixKey(1));
}

TEST(ServiceRequest, SweepsDifferingOnlyInTailsShareThePrefix)
{
    ExperimentRequest a = smallSweepRequest();
    ExperimentRequest b = a;
    b.tails = {{0.25, 4}};
    EXPECT_EQ(a.prefixKey(), b.prefixKey());
    EXPECT_NE(a.cacheKey(), b.cacheKey());

    // A workload change moves the prefix too.
    ExperimentRequest c = a;
    c.workload.totalElements = 512;
    EXPECT_NE(a.prefixKey(), c.prefixKey());
}

TEST(ServiceRequest, MalformedRequestsThrow)
{
    ExperimentRequest bad_kind = smallPowerRequest();
    bad_kind.kind = Kind::KindCount;
    EXPECT_THROW(bad_kind.canonicalize(), ServiceError);

    ExperimentRequest bad_bench = smallPowerRequest();
    bad_bench.workload.bench = 250;
    EXPECT_THROW(bad_bench.canonicalize(), ServiceError);

    ExperimentRequest no_tails = smallSweepRequest();
    no_tails.tails.clear();
    EXPECT_THROW(no_tails.canonicalize(), ServiceError);

    ExperimentRequest no_iters;
    no_iters.kind = Kind::EnergyRun;
    no_iters.workload.iterations = 0;
    EXPECT_THROW(no_iters.canonicalize(), ServiceError);
}

TEST(ServiceRequest, VfCurveFillsTheDefaultGrid)
{
    ExperimentRequest req;
    req.kind = Kind::VfCurve;
    req.canonicalize();
    EXPECT_FALSE(req.voltages.empty());
}

TEST(ServiceRequest, PresetsCanonicalize)
{
    for (const std::string &name : presetNames()) {
        ExperimentRequest req = presetRequest(name);
        EXPECT_NO_THROW(req.canonicalize()) << name;
    }
    EXPECT_THROW(presetRequest("fig99"), ServiceError);
}

TEST(ServiceRequest, PlacedRunCanonicalizesOntoTheDutyGrid)
{
    ExperimentRequest req;
    req.kind = Kind::PlacedRun;
    req.workload.bench =
        static_cast<std::uint16_t>(workloads::Microbench::Phased);
    req.workload.iterations = 1;
    req.workload.cores = 17; // divergent from the placement: repaired
    req.placement = {4, 0, 9};
    req.tileFreqSteps = {0, 60000}; // under/over range, short
    req.canonicalize();

    // The placement IS the core list.
    EXPECT_EQ(req.workload.cores, 3u);
    // Steps clamp into [1, duty denominator] and missing entries fill
    // with full duty, so every encodable step is one the sim runs.
    ASSERT_EQ(req.tileFreqSteps.size(), 3u);
    EXPECT_EQ(req.tileFreqSteps[0], 1u);
    EXPECT_GE(req.tileFreqSteps[1], 1u);
    EXPECT_EQ(req.tileFreqSteps[1], req.tileFreqSteps[2]); // both full
    EXPECT_NO_THROW(req.canonicalize()); // idempotent

    ExperimentRequest bad = req;
    bad.placement = {4, 4, 9}; // duplicate tile
    EXPECT_THROW(bad.canonicalize(), ServiceError);
    bad = req;
    bad.placement = {25}; // off the 5x5 mesh
    EXPECT_THROW(bad.canonicalize(), ServiceError);
    bad = req;
    bad.placement.clear();
    EXPECT_THROW(bad.canonicalize(), ServiceError);
    bad = req;
    bad.workload.iterations = 0;
    EXPECT_THROW(bad.canonicalize(), ServiceError);
}

TEST(ServiceRequest, SampledFieldsJoinOnlyEnergyKindsCacheIdentity)
{
    // On an EnergyRun, the sampled opt-in is part of the identity…
    ExperimentRequest a;
    a.kind = Kind::EnergyRun;
    a.workload.cores = 2;
    a.workload.iterations = 2;
    ExperimentRequest b = a;
    b.sampledSlices = 8;
    a.canonicalize();
    b.canonicalize();
    EXPECT_NE(a.cacheKey(), b.cacheKey());
    // …and slices > 0 pins a concrete interval size (never 0).
    EXPECT_GT(b.sampledIntervalInsns, 0u);
    EXPECT_EQ(a.sampledIntervalInsns, 0u);

    // On kinds that cannot sample, the fields are stripped and must
    // not split the cache.
    ExperimentRequest c = smallPowerRequest();
    ExperimentRequest d = c;
    d.sampledSlices = 8;
    d.sampledIntervalInsns = 123456;
    c.canonicalize();
    d.canonicalize();
    EXPECT_EQ(c.cacheKey(), d.cacheKey());
    EXPECT_EQ(d.sampledSlices, 0u);

    // Placement fields strip off non-PlacedRun kinds the same way.
    ExperimentRequest e = smallPowerRequest();
    ExperimentRequest f = e;
    f.placement = {1, 2};
    f.tileFreqSteps = {5, 5};
    e.canonicalize();
    f.canonicalize();
    EXPECT_EQ(e.cacheKey(), f.cacheKey());
    EXPECT_TRUE(f.placement.empty());
}

// ---- result cache ---------------------------------------------------

TEST(ServiceCache, EvictsLruUnderCapacityPressure)
{
    CacheConfig cfg;
    cfg.shards = 1; // deterministic budgets for the assertion
    cfg.maxEntries = 4;
    cfg.maxBytes = 0; // entry-bounded only
    ResultCache cache(cfg);

    std::vector<Hash128> keys;
    for (std::uint32_t i = 0; i < 8; ++i) {
        Hasher h;
        h.updateU32(i);
        keys.push_back(h.digest());
        cache.insert(keys.back(), payloadOf({static_cast<std::uint8_t>(i)}));
    }
    const CacheStats stats = cache.stats();
    EXPECT_EQ(stats.entries, 4u);
    EXPECT_EQ(stats.evictions, 4u);
    // Oldest entries are gone, newest survive.
    EXPECT_EQ(cache.lookup(keys[0]), nullptr);
    EXPECT_NE(cache.lookup(keys[7]), nullptr);
}

TEST(ServiceCache, ByteBudgetEvicts)
{
    CacheConfig cfg;
    cfg.shards = 1;
    cfg.maxEntries = 0;
    cfg.maxBytes = 64;
    ResultCache cache(cfg);
    for (std::uint32_t i = 0; i < 8; ++i) {
        Hasher h;
        h.updateU32(i ^ 0x5a5a);
        cache.insert(h.digest(),
                     payloadOf(std::vector<std::uint8_t>(32, 0x77)));
    }
    EXPECT_LE(cache.stats().bytes, 64u);
    EXPECT_GT(cache.stats().evictions, 0u);
}

TEST(ServiceCache, SingleFlightCoalescesConcurrentMisses)
{
    ResultCache cache;
    Hasher h;
    h.updateU32(0xc0a1e5ce);
    const Hash128 key = h.digest();

    ResultCache::Acquired leader = cache.acquire(key);
    ASSERT_TRUE(leader.leader);
    ASSERT_FALSE(leader.hit());

    std::atomic<bool> waiter_got_payload{false};
    std::thread waiter([&] {
        ResultCache::Acquired a = cache.acquire(key);
        EXPECT_FALSE(a.leader);
        if (a.hit()) {
            // The leader published before we acquired: also valid.
            waiter_got_payload.store(true);
            return;
        }
        const CachePayload p = a.pending.get();
        waiter_got_payload.store(p != nullptr && p->size() == 3);
    });

    // Give the waiter time to join the flight, then publish.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    cache.publish(key, payloadOf({1, 2, 3}));
    waiter.join();
    EXPECT_TRUE(waiter_got_payload.load());
    EXPECT_NE(cache.lookup(key), nullptr);
}

TEST(ServiceCache, AbandonedFlightWakesWaitersEmptyHanded)
{
    ResultCache cache;
    Hasher h;
    h.updateU32(0xdeadc0de);
    const Hash128 key = h.digest();

    ResultCache::Acquired leader = cache.acquire(key);
    ASSERT_TRUE(leader.leader);
    ResultCache::Acquired waiter = cache.acquire(key);
    ASSERT_FALSE(waiter.leader);
    ASSERT_FALSE(waiter.hit());

    cache.abandon(key);
    EXPECT_EQ(waiter.pending.get(), nullptr); // recompute yourself
    EXPECT_EQ(cache.lookup(key), nullptr);    // nothing was cached
}

TEST(ServiceCache, CorruptedEntryIsRejectedAndRecomputable)
{
    ResultCache cache;
    Hasher h;
    h.updateU32(0xb17f11b);
    const Hash128 key = h.digest();
    cache.insert(key, payloadOf({10, 20, 30}));
    ASSERT_NE(cache.lookup(key), nullptr);

    ASSERT_TRUE(cache.corruptEntryForTest(key));
    EXPECT_EQ(cache.lookup(key), nullptr); // CRC rejects, entry evicted
    EXPECT_GE(cache.stats().corruptRejected, 1u);

    // The key is usable again: a recompute repopulates it.
    ResultCache::Acquired again = cache.acquire(key);
    EXPECT_TRUE(again.leader);
    cache.publish(key, payloadOf({10, 20, 30}));
    EXPECT_NE(cache.lookup(key), nullptr);
}

TEST(ServiceCache, DiskSpillSurvivesRestartAndRejectsCorruptFiles)
{
    const std::string dir =
        (std::filesystem::temp_directory_path() / "piton_cache_test")
            .string();
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);

    Hasher h;
    h.updateU32(0xd15c);
    const Hash128 key = h.digest();
    CacheConfig cfg;
    cfg.diskDir = dir;
    {
        ResultCache cache(cfg);
        cache.insert(key, payloadOf({5, 6, 7, 8}));
    }
    {
        // A fresh cache (fresh process, conceptually) hits via disk.
        ResultCache cache(cfg);
        ResultCache::Acquired a = cache.acquire(key);
        ASSERT_TRUE(a.hit());
        EXPECT_EQ(*a.payload, (std::vector<std::uint8_t>{5, 6, 7, 8}));
        EXPECT_EQ(cache.stats().diskHits, 1u);
    }
    {
        // Corrupt the spill file: must be rejected AND deleted.
        ResultCache cache(cfg);
        const std::string path = cache.diskPathFor(key);
        ASSERT_FALSE(path.empty());
        std::FILE *f = std::fopen(path.c_str(), "r+b");
        ASSERT_NE(f, nullptr);
        std::fseek(f, -1, SEEK_END);
        std::fputc(0x00, f);
        std::fclose(f);

        ResultCache::Acquired a = cache.acquire(key);
        EXPECT_FALSE(a.hit());
        EXPECT_TRUE(a.leader);
        cache.abandon(key);
        EXPECT_GE(cache.stats().corruptRejected, 1u);
        EXPECT_FALSE(std::filesystem::exists(path));
    }
    std::filesystem::remove_all(dir);
}

// ---- scheduler ------------------------------------------------------

SchedulerConfig
tinySchedulerConfig(unsigned threads = 2)
{
    SchedulerConfig cfg;
    cfg.threads = threads;
    return cfg;
}

TEST(ServiceScheduler, CachedResponseIsByteIdenticalToColdRun)
{
    ExperimentScheduler sched(tinySchedulerConfig());
    const ExperimentRequest req = smallPowerRequest();

    const ServeResult cold = sched.serve(req);
    ASSERT_EQ(cold.status, Status::Ok);
    EXPECT_FALSE(cold.cacheHit);

    const ServeResult warm = sched.serve(req);
    ASSERT_EQ(warm.status, Status::Ok);
    EXPECT_TRUE(warm.cacheHit);
    EXPECT_EQ(*warm.body, *cold.body); // the acceptance bar: byte-equal

    const SchedulerMetrics m = sched.metrics();
    EXPECT_EQ(m.completed, 2u);
    EXPECT_EQ(m.cacheHits, 1u);
    EXPECT_GT(m.hitRate, 0.0);
}

TEST(ServiceScheduler, MalformedRequestFailsFast)
{
    ExperimentScheduler sched(tinySchedulerConfig());
    ExperimentRequest bad = smallSweepRequest();
    bad.tails.clear();
    const ServeResult r = sched.serve(bad);
    EXPECT_EQ(r.status, Status::Error);
    const ExperimentResponse resp = ExperimentResponse::decodeBody(*r.body);
    EXPECT_FALSE(resp.error.empty());
}

TEST(ServiceScheduler, ShedsBeyondAdmissionBound)
{
    SchedulerConfig cfg = tinySchedulerConfig(1);
    cfg.maxPending = 1;
    ExperimentScheduler sched(cfg);

    // Occupy the only slot, then burst: everything past the bound must
    // shed immediately rather than queue without limit.
    ExperimentScheduler::Ticket busy = sched.submit(smallSweepRequest());
    std::size_t shed = 0;
    for (int i = 0; i < 8; ++i) {
        ExperimentRequest req = smallPowerRequest();
        req.seed = 0x9000 + static_cast<std::uint64_t>(i);
        const ExperimentScheduler::Ticket t = sched.submit(req);
        if (t.result.get().status == Status::Shed)
            ++shed;
    }
    EXPECT_GT(shed, 0u);
    EXPECT_EQ(busy.result.get().status, Status::Ok);
    sched.drain();
    EXPECT_EQ(sched.metrics().shed, shed);
    // Shed requests released their slots: the scheduler still serves.
    EXPECT_EQ(sched.serve(smallPowerRequest()).status, Status::Ok);
}

TEST(ServiceScheduler, QueuedDeadlineExpiresWithoutRunning)
{
    SchedulerConfig cfg = tinySchedulerConfig(1);
    // Injected clock: the deadline is generous in wall-time terms, and
    // only OUR advance can expire it — no dependence on how slowly a
    // loaded CI host dequeues the request.
    auto fake_ms = std::make_shared<std::atomic<std::int64_t>>(0);
    const auto epoch = std::chrono::steady_clock::now();
    cfg.clock = [fake_ms, epoch] {
        return epoch + std::chrono::milliseconds(fake_ms->load());
    };
    ExperimentScheduler sched(cfg);

    // A slow request owns the single worker; by the time the queued
    // urgent request is dequeued, the fake clock is past its deadline.
    ExperimentScheduler::Ticket slow = sched.submit(smallSweepRequest());
    ExperimentRequest urgent = smallPowerRequest();
    urgent.seed = 0xdead;
    urgent.deadlineMs = 60000;
    const ExperimentScheduler::Ticket t = sched.submit(urgent);
    fake_ms->fetch_add(61000);
    EXPECT_EQ(t.result.get().status, Status::DeadlineExpired);
    EXPECT_EQ(slow.result.get().status, Status::Ok);
    EXPECT_EQ(sched.metrics().deadlineExpired, 1u);
}

TEST(ServiceScheduler, GenerousDeadlineDoesNotExpire)
{
    SchedulerConfig cfg = tinySchedulerConfig(1);
    auto fake_ms = std::make_shared<std::atomic<std::int64_t>>(0);
    const auto epoch = std::chrono::steady_clock::now();
    cfg.clock = [fake_ms, epoch] {
        return epoch + std::chrono::milliseconds(fake_ms->load());
    };
    ExperimentScheduler sched(cfg);

    // The frozen fake clock never reaches the deadline: however long
    // the real run takes, the request must complete normally.
    ExperimentRequest req = smallPowerRequest();
    req.deadlineMs = 1;
    EXPECT_EQ(sched.serve(req).status, Status::Ok);
    EXPECT_EQ(sched.metrics().deadlineExpired, 0u);
}

TEST(ServiceScheduler, CancelReleasesTheSlot)
{
    SchedulerConfig cfg = tinySchedulerConfig(1);
    ExperimentScheduler sched(cfg);

    ExperimentScheduler::Ticket slow = sched.submit(smallSweepRequest());
    ExperimentRequest victim = smallPowerRequest();
    victim.seed = 0xcafe; // distinct key
    ExperimentScheduler::Ticket t = sched.submit(victim);
    t.cancel->store(true);
    EXPECT_EQ(t.result.get().status, Status::Cancelled);
    EXPECT_EQ(slow.result.get().status, Status::Ok);
    sched.drain();
    EXPECT_EQ(sched.metrics().queueDepth, 0u);
    EXPECT_EQ(sched.metrics().cancelled, 1u);
    // The pool is healthy afterwards.
    EXPECT_EQ(sched.serve(smallPowerRequest()).status, Status::Ok);
}

TEST(ServiceScheduler, VersionBumpInvalidatesDiskEntries)
{
    const std::string dir =
        (std::filesystem::temp_directory_path() / "piton_salt_test")
            .string();
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    const ExperimentRequest req = smallPowerRequest();

    SchedulerConfig cfg = tinySchedulerConfig();
    cfg.resultCache.diskDir = dir;
    {
        ExperimentScheduler sched(cfg);
        EXPECT_FALSE(sched.serve(req).cacheHit);
        EXPECT_TRUE(sched.serve(req).cacheHit);
    }
    {
        // Same store, same code — a restart hits via disk.
        ExperimentScheduler sched(cfg);
        EXPECT_TRUE(sched.serve(req).cacheHit);
    }
    {
        // A version bump must cold-start: stored entries are stale.
        SchedulerConfig bumped = cfg;
        bumped.versionSalt = 1;
        ExperimentScheduler sched(bumped);
        EXPECT_FALSE(sched.serve(req).cacheHit);
    }
    std::filesystem::remove_all(dir);
}

// ---- executor: warm-start bit identity ------------------------------

TEST(ServiceExecutor, WarmStartedSweepIsBitIdenticalToCold)
{
    ExperimentRequest req = smallSweepRequest();
    req.canonicalize();
    const RunControl ctl;

    // Cold reference: no prefix cache, every point pays the prefix.
    const ExperimentResponse cold = runExperiment(req, ctl, nullptr, 0);
    ASSERT_EQ(cold.status, Status::Ok);

    // Warm path twice: first populates the prefix image, second forks
    // from it.  Both must match the cold run byte for byte.
    ResultCache prefix_cache;
    const ExperimentResponse warm1 =
        runExperiment(req, ctl, &prefix_cache, 0);
    const ExperimentResponse warm2 =
        runExperiment(req, ctl, &prefix_cache, 0);
    EXPECT_EQ(prefix_cache.stats().entries, 1u);
    EXPECT_EQ(warm1.encodeBody(), cold.encodeBody());
    EXPECT_EQ(warm2.encodeBody(), cold.encodeBody());
}

TEST(ServiceExecutor, VfCurveMatchesDirectExperiment)
{
    ExperimentRequest req;
    req.kind = Kind::VfCurve;
    req.voltages = {0.9, 1.0};
    req.canonicalize();
    const ExperimentResponse resp =
        runExperiment(req, RunControl{}, nullptr, 0);
    ASSERT_EQ(resp.status, Status::Ok);
    ASSERT_EQ(resp.vfPoints.size(), 2u);
    const core::VfScalingExperiment vf;
    const core::VfPoint direct = vf.measure(req.chipId, 1.0);
    EXPECT_EQ(resp.vfPoints[1].fmaxMhz, direct.fmaxMhz);
}

TEST(ServiceExecutor, CancelledBeforeRunReturnsCancelled)
{
    ExperimentRequest req = smallPowerRequest();
    req.canonicalize();
    RunControl ctl;
    ctl.cancelled = std::make_shared<std::atomic<bool>>(true);
    const ExperimentResponse resp = runExperiment(req, ctl, nullptr, 0);
    EXPECT_EQ(resp.status, Status::Cancelled);
}

// ---- TCP server end to end ------------------------------------------

TEST(ServiceServer, TcpMatchesLocalByteForByte)
{
    ServerConfig cfg;
    cfg.scheduler.threads = 2;
    ExperimentServer server(cfg);
    server.start();

    const ExperimentRequest req = smallPowerRequest();
    TcpClient tcp(server.port());
    const ClientResult over_tcp = tcp.run(req);
    ASSERT_EQ(over_tcp.status, Status::Ok);
    EXPECT_FALSE(over_tcp.servedFromCache);

    // Same request against an independent in-process scheduler: the
    // transport must not leak into the result bytes.
    ExperimentScheduler local_sched(tinySchedulerConfig());
    LocalClient local(local_sched);
    const ClientResult in_process = local.run(req);
    ASSERT_EQ(in_process.status, Status::Ok);
    EXPECT_EQ(over_tcp.body, in_process.body);

    // And the server's own cache hit returns the same bytes again.
    const ClientResult repeat = tcp.run(req);
    EXPECT_TRUE(repeat.servedFromCache);
    EXPECT_EQ(repeat.body, over_tcp.body);

    server.stop();
}

TEST(ServiceServer, PipelinedRequestsResolveOutOfOrder)
{
    ServerConfig cfg;
    cfg.scheduler.threads = 2;
    ExperimentServer server(cfg);
    server.start();

    TcpClient tcp(server.port());
    ExperimentRequest a = smallPowerRequest();
    ExperimentRequest b = smallPowerRequest();
    b.seed = 0xb;
    ExperimentRequest c = smallPowerRequest();
    c.seed = 0xc;
    const std::uint64_t ida = tcp.submit(a);
    const std::uint64_t idb = tcp.submit(b);
    const std::uint64_t idc = tcp.submit(c);
    // Wait in reverse submission order: stashing must cover the gap.
    EXPECT_EQ(tcp.waitFor(idc).status, Status::Ok);
    EXPECT_EQ(tcp.waitFor(idb).status, Status::Ok);
    EXPECT_EQ(tcp.waitFor(ida).status, Status::Ok);

    const SchedulerMetrics m = tcp.stats();
    EXPECT_GE(m.completed, 3u);
    server.stop();
}

TEST(ServiceServer, CancelFrameCancelsQueuedRequest)
{
    ServerConfig cfg;
    cfg.scheduler.threads = 1;
    ExperimentServer server(cfg);
    server.start();

    TcpClient tcp(server.port());
    const std::uint64_t slow = tcp.submit(smallSweepRequest());
    ExperimentRequest victim = smallPowerRequest();
    victim.seed = 0x7171; // distinct key
    const std::uint64_t id = tcp.submit(victim);
    tcp.cancel(id);
    EXPECT_EQ(tcp.waitFor(id).status, Status::Cancelled);
    EXPECT_EQ(tcp.waitFor(slow).status, Status::Ok);
    server.stop();
}

TEST(ServiceServer, PingAndGracefulShutdown)
{
    ServerConfig cfg;
    cfg.scheduler.threads = 1;
    ExperimentServer server(cfg);
    server.start();

    TcpClient tcp(server.port());
    tcp.ping();
    tcp.shutdownServer(); // returns only after ShutdownAck
    server.wait();
    EXPECT_FALSE(server.running());
}

TEST(ServiceServer, ShedUnderBurstThenRecovers)
{
    ServerConfig cfg;
    cfg.scheduler.threads = 1;
    cfg.scheduler.maxPending = 2;
    ExperimentServer server(cfg);
    server.start();

    TcpClient tcp(server.port());
    std::vector<std::uint64_t> ids;
    for (int i = 0; i < 10; ++i) {
        ExperimentRequest req = smallPowerRequest();
        req.seed = 0x4000 + static_cast<std::uint64_t>(i);
        ids.push_back(tcp.submit(req));
    }
    std::size_t ok = 0, shed = 0;
    for (const std::uint64_t id : ids) {
        const ClientResult r = tcp.waitFor(id);
        if (r.status == Status::Ok)
            ++ok;
        else if (r.status == Status::Shed)
            ++shed;
    }
    EXPECT_GT(ok, 0u);
    EXPECT_GT(shed, 0u);
    EXPECT_EQ(ok + shed, ids.size());
    // Backpressure shed work, it did not wedge the server.
    EXPECT_EQ(tcp.run(smallPowerRequest()).status, Status::Ok);
    server.stop();
}

} // namespace
