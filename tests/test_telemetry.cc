/**
 * @file
 * Tests for the telemetry subsystem: ring-buffer downsampling, the
 * recorder/aggregation layer, CSV/JSONL round-trips, sample-window
 * alignment against sim::System, ledger agreement, and the parallel
 * determinism contract.
 */

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/stats.hh"
#include "core/app_experiments.hh"
#include "core/thermal_experiments.hh"
#include "power/energy_model.hh"
#include "sim/system.hh"
#include "telemetry/export.hh"
#include "telemetry/recorder.hh"
#include "telemetry/schema.hh"
#include "telemetry/series.hh"
#include "workloads/microbenchmarks.hh"

namespace piton
{
namespace
{

namespace ts = telemetry::schema;
using telemetry::Downsample;
using telemetry::SamplePoint;
using telemetry::SeriesRing;
using telemetry::TelemetryRecorder;
using telemetry::Unit;

// ---- ring buffer ------------------------------------------------------

TEST(SeriesRing, StoresRawPointsBelowCapacity)
{
    SeriesRing r("p", Unit::Watts, Downsample::Mean, 8);
    for (int i = 0; i < 5; ++i)
        r.push(i * 0.5, 0.5, 1.0 + i);
    EXPECT_EQ(r.size(), 5u);
    EXPECT_EQ(r.stride(), 1u);
    EXPECT_EQ(r.pushes(), 5u);
    EXPECT_DOUBLE_EQ(r.at(3).tS, 1.5);
    EXPECT_DOUBLE_EQ(r.at(3).dtS, 0.5);
    EXPECT_DOUBLE_EQ(r.at(3).value, 4.0);
}

TEST(SeriesRing, DownsamplesPairwiseWhenFull)
{
    SeriesRing r("p", Unit::Watts, Downsample::Mean, 4);
    for (int i = 0; i < 3; ++i)
        r.push(i * 1.0, 1.0, 10.0 * (i + 1));
    EXPECT_EQ(r.stride(), 1u);
    // The push that fills the ring compacts it: 4 -> 2, stride 2.
    r.push(3.0, 1.0, 40.0);
    EXPECT_EQ(r.stride(), 2u);
    EXPECT_EQ(r.size(), 2u);
    r.push(4.0, 1.0, 50.0); // accumulates into a pending point
    // Merged points: dt-weighted means of (10,20) and (30,40).
    EXPECT_DOUBLE_EQ(r.at(0).tS, 0.0);
    EXPECT_DOUBLE_EQ(r.at(0).dtS, 2.0);
    EXPECT_DOUBLE_EQ(r.at(0).value, 15.0);
    EXPECT_DOUBLE_EQ(r.at(1).value, 35.0);
    // The 5th push is a pending partial point, visible in snapshot().
    const auto snap = r.snapshot();
    ASSERT_EQ(snap.size(), 3u);
    EXPECT_DOUBLE_EQ(snap[2].tS, 4.0);
    EXPECT_DOUBLE_EQ(snap[2].dtS, 1.0);
    EXPECT_DOUBLE_EQ(snap[2].value, 50.0);
}

TEST(SeriesRing, MeanDownsamplingPreservesIntegral)
{
    SeriesRing r("p", Unit::Watts, Downsample::Mean, 4);
    double integral = 0.0;
    for (int i = 0; i < 37; ++i) {
        const double v = 0.3 + 0.07 * (i % 11);
        r.push(i * 0.25, 0.25, v);
        integral += v * 0.25;
    }
    EXPECT_LE(r.size(), 4u);
    EXPECT_GT(r.stride(), 1u);
    double stored = 0.0;
    for (const auto &pt : r.snapshot())
        stored += pt.value * pt.dtS;
    EXPECT_NEAR(stored, integral, 1e-12 * integral);
    // The time axis stays contiguous: each point starts where the
    // previous one ended.
    const auto snap = r.snapshot();
    for (std::size_t i = 1; i < snap.size(); ++i)
        EXPECT_NEAR(snap[i].tS, snap[i - 1].tS + snap[i - 1].dtS, 1e-12);
}

TEST(SeriesRing, SumDownsamplingPreservesTotal)
{
    SeriesRing r("e", Unit::Joules, Downsample::Sum, 6);
    double total = 0.0;
    for (int i = 0; i < 100; ++i) {
        const double v = 1e-6 * (1 + i % 7);
        r.push(i * 1.0, 1.0, v);
        total += v;
    }
    EXPECT_LE(r.size(), 6u);
    double stored = 0.0;
    for (const auto &pt : r.snapshot())
        stored += pt.value;
    EXPECT_NEAR(stored, total, 1e-12 * total);
    EXPECT_EQ(r.pushes(), 100u);
}

TEST(SeriesRing, RejectsBadInput)
{
    EXPECT_THROW(SeriesRing("x", Unit::Watts, Downsample::Mean, 3),
                 std::logic_error);
    SeriesRing r("x", Unit::Watts, Downsample::Mean, 4);
    EXPECT_THROW(r.push(0.0, 0.0, 1.0), std::logic_error);
    EXPECT_THROW(r.push(0.0, 1.0, std::nan("")), std::logic_error);
}

// ---- recorder / aggregation ------------------------------------------

TEST(TelemetryRecorder, AggregateMatchesRunningStatsBitExact)
{
    // The aggregation layer runs the same Welford pass as
    // board::PowerMeasurement — means and stddevs are bit-identical,
    // which is what lets the power-cap study switch to the telemetry
    // path without changing a single reported number.
    TelemetryRecorder rec;
    const std::size_t id =
        rec.defineSeries("p", Unit::Watts, Downsample::Mean);
    RunningStats ref;
    for (int i = 0; i < 200; ++i) {
        const double v = 2.0 + 0.013 * (i % 17) - 0.007 * (i % 5);
        rec.record(id, i * 1.0, 1.0, v);
        ref.add(v);
    }
    const telemetry::Aggregate a = rec.aggregate("p");
    EXPECT_EQ(a.count, 200u);
    EXPECT_EQ(a.mean, ref.mean());
    EXPECT_EQ(a.stddev, ref.stddev());
    EXPECT_EQ(a.min, ref.min());
    EXPECT_EQ(a.max, ref.max());
    EXPECT_GE(a.p50, a.min);
    EXPECT_LE(a.p99, a.max);
    EXPECT_LE(a.p50, a.p95);
}

TEST(TelemetryRecorder, DefineSeriesIsIdempotentAndTyped)
{
    TelemetryRecorder rec;
    const std::size_t a =
        rec.defineSeries("p", Unit::Watts, Downsample::Mean);
    EXPECT_EQ(rec.defineSeries("p", Unit::Watts, Downsample::Mean), a);
    EXPECT_THROW(rec.defineSeries("p", Unit::Joules, Downsample::Sum),
                 std::logic_error);
}

TEST(TelemetryRecorder, MergePrefixesAndPreservesRingState)
{
    TelemetryRecorder task;
    const std::size_t id =
        task.defineSeries("e", Unit::Joules, Downsample::Sum);
    // Push past capacity so the merged ring carries nontrivial
    // stride/pending state.
    TelemetryRecorder small(telemetry::RecorderConfig{4, false});
    const std::size_t sid =
        small.defineSeries("e", Unit::Joules, Downsample::Sum);
    for (int i = 0; i < 11; ++i) {
        task.record(id, i * 1.0, 1.0, 1.0 + i);
        small.record(sid, i * 1.0, 1.0, 1.0 + i);
    }

    TelemetryRecorder merged;
    merged.merge(task, "t0/");
    merged.merge(small, "t1/");
    const SeriesRing *a = merged.find("t0/e");
    const SeriesRing *b = merged.find("t1/e");
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(a->pushes(), 11u);
    EXPECT_GT(small.series(sid).stride(), 1u);
    EXPECT_EQ(b->stride(), small.series(sid).stride());
    EXPECT_EQ(b->pushes(), small.series(sid).pushes());
    // Totals survive the merge exactly.
    EXPECT_EQ(merged.sum("t0/e"), task.sum("e"));
    EXPECT_EQ(merged.sum("t1/e"), small.sum("e"));
    // Colliding names are an error, not a silent overwrite.
    EXPECT_THROW(merged.merge(task, "t0/"), std::logic_error);
}

// ---- exporters --------------------------------------------------------

TEST(TelemetryExport, CsvRoundTripIsBitIdentical)
{
    TelemetryRecorder rec(telemetry::RecorderConfig{4, false});
    rec.setCyclesPerSample(2000);
    const std::size_t p =
        rec.defineSeries("power.w", Unit::Watts, Downsample::Mean);
    const std::size_t e =
        rec.defineSeries("energy.j", Unit::Joules, Downsample::Sum);
    for (int i = 0; i < 9; ++i) {
        rec.record(p, i * (1.0 / 3.0), 1.0 / 3.0, 2.0 / (i + 3));
        rec.record(e, i * (1.0 / 3.0), 1.0 / 3.0, 1e-7 * (i + 1) / 7.0);
    }

    std::ostringstream os;
    telemetry::writeCsv(os, rec);
    std::istringstream is(os.str());
    const auto parsed = telemetry::readCsv(is);
    ASSERT_EQ(parsed.size(), 2u);
    for (std::size_t si = 0; si < parsed.size(); ++si) {
        const SeriesRing &orig = rec.series(si);
        const auto snap = orig.snapshot();
        EXPECT_EQ(parsed[si].name, orig.name());
        EXPECT_EQ(parsed[si].unit, telemetry::unitName(orig.unit()));
        EXPECT_EQ(parsed[si].downsample,
                  telemetry::downsampleName(orig.downsample()));
        EXPECT_EQ(parsed[si].stride, orig.stride());
        ASSERT_EQ(parsed[si].points.size(), snap.size());
        for (std::size_t i = 0; i < snap.size(); ++i) {
            // %.17g round-trips doubles exactly.
            EXPECT_EQ(parsed[si].points[i].tS, snap[i].tS);
            EXPECT_EQ(parsed[si].points[i].dtS, snap[i].dtS);
            EXPECT_EQ(parsed[si].points[i].value, snap[i].value);
        }
    }
}

TEST(TelemetryExport, JsonlMatchesCsvSeries)
{
    TelemetryRecorder rec;
    rec.setCyclesPerSample(1234);
    const std::size_t p =
        rec.defineSeries("power.w", Unit::Watts, Downsample::Mean);
    for (int i = 0; i < 20; ++i)
        rec.record(p, i * 0.059, 0.059, 1.0 / (i + 1));

    std::ostringstream csv_os, jsonl_os;
    telemetry::writeCsv(csv_os, rec);
    telemetry::writeJsonl(jsonl_os, rec);
    std::istringstream csv_is(csv_os.str()), jsonl_is(jsonl_os.str());
    const auto from_csv = telemetry::readCsv(csv_is);
    const auto from_jsonl = telemetry::readJsonl(jsonl_is);
    ASSERT_EQ(from_csv.size(), from_jsonl.size());
    for (std::size_t si = 0; si < from_csv.size(); ++si) {
        EXPECT_EQ(from_csv[si].name, from_jsonl[si].name);
        EXPECT_EQ(from_csv[si].unit, from_jsonl[si].unit);
        ASSERT_EQ(from_csv[si].points.size(),
                  from_jsonl[si].points.size());
        for (std::size_t i = 0; i < from_csv[si].points.size(); ++i) {
            EXPECT_EQ(from_csv[si].points[i].tS,
                      from_jsonl[si].points[i].tS);
            EXPECT_EQ(from_csv[si].points[i].value,
                      from_jsonl[si].points[i].value);
        }
    }
}

// ---- System integration ----------------------------------------------

TEST(TelemetrySystem, SampleWindowsAlignWithCyclesPerSample)
{
    sim::SystemOptions opts;
    sim::System sys(opts);
    TelemetryRecorder rec;
    sys.attachTelemetry(&rec);
    const std::uint32_t samples = 16;
    sys.measure(samples);

    const double dt =
        static_cast<double>(opts.cyclesPerSample) / sys.coreClockHz();
    const std::uint32_t warm =
        std::max<std::uint32_t>(
            1, static_cast<std::uint32_t>(opts.warmupCycles
                                          / opts.cyclesPerSample))
        + 4; // thermal pin iterations
    const SeriesRing *truth = rec.find(ts::kPowerOnChipW);
    ASSERT_NE(truth, nullptr);
    ASSERT_EQ(truth->size(), warm + samples);
    for (std::size_t i = 0; i < truth->size(); ++i) {
        EXPECT_DOUBLE_EQ(truth->at(i).dtS, dt);
        EXPECT_NEAR(truth->at(i).tS, i * dt, 1e-9);
    }
    // Measured samples share the true series' windows: sample j of the
    // monitor chain covers the same [t, t+dt) as true window warm+j.
    const SeriesRing *meas = rec.find(ts::kMeasuredOnChipW);
    ASSERT_NE(meas, nullptr);
    ASSERT_EQ(meas->size(), samples);
    for (std::size_t j = 0; j < meas->size(); ++j) {
        EXPECT_NEAR(meas->at(j).tS, truth->at(warm + j).tS, 1e-9);
        EXPECT_DOUBLE_EQ(meas->at(j).dtS, dt);
    }
    EXPECT_EQ(rec.cyclesPerSample(), opts.cyclesPerSample);
}

TEST(TelemetrySystem, MeasuredSeriesReproducesPowerMeasurement)
{
    // Two identical systems, one observed through telemetry: the
    // telemetry-path mean must equal the PowerMeasurement mean to the
    // last bit (this is what keeps the power-cap rewire's numbers
    // unchanged).
    sim::SystemOptions opts;
    opts.chipId = 3;
    sim::System plain(opts);
    sim::System observed(opts);
    const auto progs_a = workloads::loadMicrobench(
        plain, workloads::Microbench::HP, 4, 2, /*iterations=*/0);
    const auto progs_b = workloads::loadMicrobench(
        observed, workloads::Microbench::HP, 4, 2, /*iterations=*/0);
    TelemetryRecorder rec;
    observed.attachTelemetry(&rec);
    const board::PowerMeasurement m = plain.measure(12);
    observed.measure(12);
    EXPECT_DOUBLE_EQ(rec.aggregate(ts::kMeasuredOnChipW).mean,
                     m.onChipMeanW());
    EXPECT_DOUBLE_EQ(rec.aggregate(ts::kMeasuredOnChipW).stddev,
                     m.onChipStddevW());
    EXPECT_DOUBLE_EQ(rec.aggregate(ts::kMeasuredVddW).mean,
                     m.vddW.mean());
    EXPECT_DOUBLE_EQ(rec.aggregate(ts::kMeasuredVioW).mean,
                     m.vioW.mean());
}

TEST(TelemetrySystem, IntegratedEnergyAgreesWithLedger)
{
    sim::SystemOptions opts;
    sim::System sys(opts);
    const auto progs = workloads::loadMicrobench(
        sys, workloads::Microbench::HP, 6, 2, /*iterations=*/400);
    telemetry::RecorderConfig cfg;
    cfg.perTile = true;
    TelemetryRecorder rec(cfg);
    sys.attachTelemetry(&rec);
    const auto res = sys.runToCompletion(5'000'000);
    ASSERT_TRUE(res.completed);

    // The ledger is ground truth; telemetry re-derives the same energy
    // three ways (documented tolerance: 1e-9 relative, DESIGN.md §8).
    const double ledger_j =
        sys.pitonChip().ledger().total().onChipCoreAndSram();
    ASSERT_GT(ledger_j, 0.0);
    const double tol = 1e-9 * ledger_j;
    EXPECT_NEAR(rec.sum(ts::kEnergyActiveJ), ledger_j, tol);
    EXPECT_NEAR(rec.integrate(ts::kPowerDynamicW), ledger_j, tol);
    double cat_sum = 0.0;
    for (std::size_t i = 0; i < power::kNumCategories; ++i) {
        const auto c = static_cast<power::Category>(i);
        cat_sum += rec.sum(std::string(ts::kEnergyCategoryPrefix)
                           + power::categoryName(c) + "_j");
    }
    EXPECT_NEAR(cat_sum, ledger_j, tol);

    // Per-tile series reproduce the chip's per-tile core-energy
    // counters exactly (the baselines were snapshotted at attach,
    // before any activity).
    const std::vector<double> tiles = sys.pitonChip().tileCoreEnergyJ();
    ASSERT_EQ(tiles.size(), 25u);
    double tile_sum = 0.0;
    for (std::size_t t = 0; t < tiles.size(); ++t) {
        std::string name = ts::kTilePrefix;
        name += static_cast<char>('0' + t / 10);
        name += static_cast<char>('0' + t % 10);
        name += ts::kTileCoreSuffix;
        EXPECT_NEAR(rec.sum(name), tiles[t], 1e-12 + 1e-9 * tiles[t])
            << "tile " << t;
        tile_sum += rec.sum(name);
    }
    EXPECT_GT(tile_sum, 0.0);
    // Core-attributed energy is a subset of Exec+Rollback: the memory
    // system books additional Rollback energy chip-wide.
    const double core_local_j =
        sys.pitonChip().ledger().category(power::Category::Exec)
            .onChipCoreAndSram()
        + sys.pitonChip().ledger().category(power::Category::Rollback)
              .onChipCoreAndSram();
    EXPECT_LE(tile_sum, core_local_j + tol);
    // Instruction counter telemetry matches the chip.
    EXPECT_DOUBLE_EQ(rec.sum(ts::kChipInsts),
                     static_cast<double>(sys.pitonChip().totalInsts()));
}

// ---- determinism ------------------------------------------------------

TEST(TelemetryDeterminism, SerialAndParallelRunsExportIdentically)
{
    // The PR 1 sweep-engine contract extended to telemetry: per-task
    // recorders merged in task order make the exported store
    // bit-identical at any thread count.
    core::PowerTimeSeriesExperiment exp;
    TelemetryRecorder serial, threaded;
    exp.runAll(2.0, 120.0, /*threads=*/1, &serial);
    exp.runAll(2.0, 120.0, /*threads=*/4, &threaded);

    std::ostringstream cs, ct, js, jt;
    telemetry::writeCsv(cs, serial);
    telemetry::writeCsv(ct, threaded);
    telemetry::writeJsonl(js, serial);
    telemetry::writeJsonl(jt, threaded);
    EXPECT_GT(cs.str().size(), 0u);
    EXPECT_EQ(cs.str(), ct.str());
    EXPECT_EQ(js.str(), jt.str());
}

TEST(TelemetryDeterminism, ThermalSweepMergeIsThreadInvariant)
{
    // Small configuration of the Fig. 17 path: full telemetry through
    // sim::System measurement, merged across family tasks.
    sim::SystemOptions opts = core::thermalStudyOptions();
    opts.sweepThreads = 1;
    const core::ThermalSweepExperiment serial_exp(opts, /*samples=*/4);
    opts.sweepThreads = 3;
    const core::ThermalSweepExperiment threaded_exp(opts, 4);

    TelemetryRecorder serial, threaded;
    const auto a = serial_exp.runAll(&serial);
    const auto b = threaded_exp.runAll(&threaded);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_DOUBLE_EQ(a[i].powerW, b[i].powerW);
        EXPECT_DOUBLE_EQ(a[i].packageTempC, b[i].packageTempC);
    }
    std::ostringstream sa, sb;
    telemetry::writeCsv(sa, serial);
    telemetry::writeCsv(sb, threaded);
    EXPECT_GT(sa.str().size(), 0u);
    EXPECT_EQ(sa.str(), sb.str());
}

} // namespace
} // namespace piton
