/**
 * @file
 * Unit tests for the power models: energy tables, scaling laws, V-f.
 */

#include <cmath>
#include <cstdint>
#include <cstring>

#include <gtest/gtest.h>

#include "common/types.hh"
#include "power/energy_model.hh"
#include "power/vf_model.hh"

namespace piton::power
{
namespace
{

using isa::InstClass;

TEST(EnergyModel, OperandActivityIsHammingWeight)
{
    EXPECT_EQ(EnergyModel::operandActivity(0, 0), 0u);
    EXPECT_EQ(EnergyModel::operandActivity(~0ULL, ~0ULL), 128u);
    EXPECT_EQ(EnergyModel::operandActivity(0xFFULL, 0), 8u);
    EXPECT_EQ(EnergyModel::operandActivity(0xAAAAAAAAAAAAAAAAULL,
                                           0x5555555555555555ULL),
              64u);
}

TEST(EnergyModel, MemoizedInstructionEnergyIsByteIdentical)
{
    // The per-(class, activity-bucket) memo must return the exact bits
    // the uncached computation produces — the ledger sums these values
    // millions of times, so even a 1-ulp drift would be observable.
    const EnergyModel m;
    for (std::size_t c = 0;
         c < static_cast<std::size_t>(InstClass::NumClasses); ++c) {
        const auto cls = static_cast<InstClass>(c);
        for (std::uint32_t act = 0; act < EnergyModel::kActivityBuckets;
             ++act) {
            const RailEnergy cached = m.instructionEnergy(cls, act);
            const RailEnergy ref = m.instructionEnergyUncached(cls, act);
            for (const Rail r : {Rail::Vdd, Rail::Vcs, Rail::Vio}) {
                std::uint64_t a = 0, b = 0;
                const double da = cached.get(r), db = ref.get(r);
                std::memcpy(&a, &da, sizeof(a));
                std::memcpy(&b, &db, sizeof(b));
                ASSERT_EQ(a, b) << "class " << c << " activity " << act;
            }
        }
    }
}

TEST(EnergyModel, OperandValuesChangeEpi)
{
    const EnergyModel m;
    const double e_min =
        m.instructionEnergy(InstClass::IntSimple, 0).onChipCoreAndSram();
    const double e_mid =
        m.instructionEnergy(InstClass::IntSimple, 64).onChipCoreAndSram();
    const double e_max =
        m.instructionEnergy(InstClass::IntSimple, 128).onChipCoreAndSram();
    EXPECT_LT(e_min, e_mid);
    EXPECT_LT(e_mid, e_max);
    EXPECT_NEAR(e_mid, 0.5 * (e_min + e_max), 1e-18);
}

TEST(EnergyModel, ClassOrderingMatchesFig11)
{
    const EnergyModel m;
    auto epi = [&](InstClass c) {
        return jToPj(m.instructionEnergy(c, 64).onChipCoreAndSram());
    };
    // Longest-latency instructions consume the most energy.
    EXPECT_LT(epi(InstClass::Nop), epi(InstClass::IntSimple));
    EXPECT_LT(epi(InstClass::IntSimple), epi(InstClass::IntMul));
    EXPECT_LT(epi(InstClass::IntMul), epi(InstClass::IntDiv));
    EXPECT_LT(epi(InstClass::FpAddD), epi(InstClass::FpMulD));
    EXPECT_LT(epi(InstClass::FpMulD), epi(InstClass::FpDivD));
    EXPECT_LT(epi(InstClass::FpAddS), epi(InstClass::FpAddD));
    EXPECT_LT(epi(InstClass::FpDivS), epi(InstClass::FpDivD));
    // The "recompute vs load" insight: ~3 adds = 1 L1-hit load.  The
    // raw table ratio sits slightly below 3 because the *measured* EPI
    // (validated in EpiIntegration.RecomputeVsLoadInsight) also carries
    // the leakage of the warmer die during the test.
    const double load_epi =
        jToPj(m.instructionEnergy(InstClass::Load, 38).onChipCoreAndSram());
    EXPECT_NEAR(load_epi / epi(InstClass::IntSimple), 2.8, 0.5);
}

TEST(EnergyModel, DynamicEnergyScalesWithVSquared)
{
    EnergyModel m;
    const double e_nom =
        m.instructionEnergy(InstClass::IntSimple, 64).total();
    m.setOperatingPoint(1.2, 1.25);
    const double e_high =
        m.instructionEnergy(InstClass::IntSimple, 64).total();
    // VDD fraction scales by 1.44, VCS fraction by (1.25/1.05)^2.
    EXPECT_GT(e_high, e_nom * 1.3);
    EXPECT_LT(e_high, e_nom * 1.5);

    m.setOperatingPoint(0.8, 0.85);
    const double e_low =
        m.instructionEnergy(InstClass::IntSimple, 64).total();
    EXPECT_LT(e_low, e_nom * 0.7);
}

TEST(EnergyModel, NocEpfMatchesFig12Slopes)
{
    const EnergyModel m;
    // NSW: no payload toggles.
    EXPECT_NEAR(jToPj(m.nocHopEnergy(0).total()), 3.58, 0.1);
    // FSW: all 64 bits toggle (the table sits above the measured
    // 16.68 pJ/hop because low-weight header flits dilute the
    // observed per-flit average).
    EXPECT_NEAR(jToPj(m.nocHopEnergy(64).total()), 18.3, 0.6);
    // HSW: half the bits toggle; roughly linear in activity factor.
    const double hsw = jToPj(m.nocHopEnergy(32).total());
    EXPECT_GT(hsw, 9.5);
    EXPECT_LT(hsw, 12.5);
    // Coupling: opposing adjacent transitions cost slightly more.
    const auto opposing = EnergyModel::opposingPairs(
        0xAAAAAAAAAAAAAAAAULL, 0x5555555555555555ULL);
    EXPECT_GT(opposing, 32u);
    EXPECT_GT(m.nocHopEnergy(64, opposing).total(),
              m.nocHopEnergy(64, 0).total());
    // Same-direction full switching has no opposing pairs.
    EXPECT_EQ(EnergyModel::opposingPairs(0, ~RegVal{0}), 0u);
}

TEST(EnergyModel, LeakageExponentialInVoltageAndTemperature)
{
    EnergyModel m;
    const double base =
        m.leakagePowerW(m.params().refTempC).onChipCoreAndSram();
    EXPECT_NEAR(base, 0.389, 0.01); // Table V static power (Chip #2)

    const double hot =
        m.leakagePowerW(m.params().refTempC + 20.0).onChipCoreAndSram();
    EXPECT_NEAR(hot / base, std::exp(0.020 * 20.0), 1e-6);

    m.setOperatingPoint(1.1, 1.15);
    const double high_v =
        m.leakagePowerW(m.params().refTempC).onChipCoreAndSram();
    EXPECT_NEAR(high_v / base, std::exp(4.5 * 0.1), 1e-6);

    // Chip leakage factor scales linearly.
    const double leaky =
        m.leakagePowerW(m.params().refTempC, 1.45).onChipCoreAndSram();
    EXPECT_NEAR(leaky / high_v, 1.45, 1e-9);
}

TEST(EnergyModel, IdlePowerMatchesTableV)
{
    const EnergyModel m;
    // At the die's idle-equilibrium temperature (~41 C) the chip burns
    // ~2015 mW (Table V).
    const double idle = m.idlePowerW(mhzToHz(500.05), 25, 41.2);
    EXPECT_NEAR(idle, 2.0153, 0.03);
}

TEST(EnergyModel, LedgerAccumulatesByCategory)
{
    const EnergyModel m;
    EnergyLedger ledger;
    ledger.add(Category::Exec, m.instructionEnergy(InstClass::IntSimple, 64));
    ledger.add(Category::Exec, m.instructionEnergy(InstClass::IntSimple, 64));
    ledger.add(Category::Noc, m.nocHopEnergy(32));
    EXPECT_GT(ledger.category(Category::Exec).total(), 0.0);
    EXPECT_GT(ledger.category(Category::Noc).total(), 0.0);
    EXPECT_DOUBLE_EQ(ledger.total().total(),
                     ledger.category(Category::Exec).total()
                         + ledger.category(Category::Noc).total());
    ledger.reset();
    EXPECT_DOUBLE_EQ(ledger.total().total(), 0.0);
}

TEST(EnergyModel, VioEventsHitOnlyVioRail)
{
    const EnergyModel m;
    const RailEnergy e = m.vioBeatEnergy();
    EXPECT_GT(e.get(Rail::Vio), 0.0);
    EXPECT_DOUBLE_EQ(e.get(Rail::Vdd), 0.0);
    EXPECT_DOUBLE_EQ(e.onChipCoreAndSram(), 0.0);
}

TEST(VfModel, CalibrationAnchors)
{
    const VfModel vf;
    // Fig. 10's voltage/frequency pairs: 514.33 MHz @ 1.0 V and
    // 285.74 MHz @ 0.8 V.
    EXPECT_NEAR(vf.rawFmaxMhz(1.0), 514.33, 1.0);
    EXPECT_NEAR(vf.rawFmaxMhz(0.8), 285.74, 1.0);
    // Monotonic over the study's voltage range.
    double prev = 0.0;
    for (double v = 0.8; v <= 1.2001; v += 0.05) {
        const double f = vf.rawFmaxMhz(v);
        EXPECT_GT(f, prev);
        prev = f;
    }
}

TEST(VfModel, SpeedFactorScalesLinearly)
{
    const VfModel vf;
    EXPECT_NEAR(vf.rawFmaxMhz(1.0, 1.045), 514.33 * 1.045, 1.5);
}

TEST(VfModel, QuantizationGrid)
{
    const VfModel vf;
    const double f = vf.quantizeMhz(514.33);
    EXPECT_LE(f, 514.33);
    EXPECT_GT(f, 514.33 - vf.params().freqStepMhz);
    EXPECT_NEAR(vf.nextStepMhz(514.33) - f, vf.params().freqStepMhz, 1e-9);
    // Grid points are self-consistent under re-quantization.
    EXPECT_NEAR(vf.quantizeMhz(f + 1e-9), f, 1e-6);
}

TEST(VfModel, BelowThresholdIsZero)
{
    const VfModel vf;
    EXPECT_DOUBLE_EQ(vf.rawFmaxMhz(0.60 + 1e-9) > 100.0 ? 1.0 : 0.0, 0.0);
}

} // namespace
} // namespace piton::power
