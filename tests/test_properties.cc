/**
 * @file
 * Property-based tests (parameterized sweeps) over the library's
 * invariants: cache-array behaviour across all four geometries,
 * coherence single-writer invariants under random traffic, NoC
 * routing/energy properties over all tile pairs, EPI monotonicity in
 * operand activity over all variants, and assembler robustness.
 */

#include <bit>
#include <map>

#include <gtest/gtest.h>

#include "arch/mem_system.hh"
#include "arch/memory.hh"
#include "arch/noc.hh"
#include "common/rng.hh"
#include "config/piton_params.hh"
#include "isa/assembler.hh"
#include "power/energy_model.hh"
#include "workloads/epi_tests.hh"

namespace piton
{
namespace
{

// ---------------------------------------------------------------------
// Cache-array properties across all four cache geometries.

class CacheGeometry : public testing::TestWithParam<config::CacheParams>
{
};

TEST_P(CacheGeometry, CapacityNeverExceeded)
{
    arch::CacheArray c(GetParam());
    Rng rng(1);
    const std::size_t capacity =
        static_cast<std::size_t>(c.numSets()) * c.ways();
    for (int i = 0; i < 5000; ++i)
        c.fill(rng.next() & 0xFFFFF8, arch::Mesi::Shared,
               static_cast<Cycle>(i));
    EXPECT_LE(c.validCount(), capacity);
}

TEST_P(CacheGeometry, FillThenProbeAlwaysHits)
{
    arch::CacheArray c(GetParam());
    Rng rng(2);
    for (int i = 0; i < 2000; ++i) {
        const Addr a = rng.next() & 0xFFFFF8;
        c.fill(a, arch::Mesi::Exclusive, static_cast<Cycle>(i));
        EXPECT_NE(c.probe(a), arch::Mesi::Invalid);
        // Every byte of the same line hits too.
        EXPECT_NE(c.probe(c.lineAlign(a) + c.lineBytes() - 1),
                  arch::Mesi::Invalid);
    }
}

TEST_P(CacheGeometry, EvictionOnlyReportsFormerResidents)
{
    arch::CacheArray c(GetParam());
    Rng rng(3);
    std::map<Addr, bool> resident;
    for (int i = 0; i < 3000; ++i) {
        const Addr a = c.lineAlign(rng.next() & 0x3FFF8);
        const arch::Eviction ev =
            c.fill(a, arch::Mesi::Shared, static_cast<Cycle>(i));
        if (ev.happened) {
            EXPECT_TRUE(resident.count(ev.lineAddr))
                << "evicted a line that was never filled";
            resident.erase(ev.lineAddr);
        }
        resident[a] = true;
    }
    EXPECT_EQ(resident.size(), c.validCount());
}

TEST_P(CacheGeometry, MostRecentlyUsedSurvivesConflictStream)
{
    arch::CacheArray c(GetParam());
    const Addr stride =
        static_cast<Addr>(c.numSets()) * c.lineBytes(); // same-set alias
    // Fill the set, touch line 0 continually while streaming others.
    c.fill(0, arch::Mesi::Shared, 1);
    for (std::uint32_t i = 1; i < c.ways() * 4; ++i) {
        c.access(0, 1000 + i);
        c.fill(stride * i, arch::Mesi::Shared, 1000 + i);
        EXPECT_NE(c.probe(0), arch::Mesi::Invalid)
            << "MRU line evicted at step " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllPitonCaches, CacheGeometry,
    testing::Values(config::PitonParams{}.l1i, config::PitonParams{}.l1d,
                    config::PitonParams{}.l15,
                    config::PitonParams{}.l2Slice),
    [](const testing::TestParamInfo<config::CacheParams> &info) {
        // L1D and L1.5 share a geometry: include the index for
        // uniqueness.
        return "c" + std::to_string(info.index) + "_size"
               + std::to_string(info.param.sizeBytes / 1024) + "k_line"
               + std::to_string(info.param.lineBytes);
    });

// ---------------------------------------------------------------------
// Coherence invariants under random multi-tile traffic.

class CoherenceFuzz : public testing::TestWithParam<std::uint64_t>
{
  protected:
    CoherenceFuzz() : mem_(params_, energy_, ledger_, memory_, 5) {}

    config::PitonParams params_;
    power::EnergyModel energy_;
    power::EnergyLedger ledger_;
    arch::MainMemory memory_;
    arch::MemorySystem mem_;
};

TEST_P(CoherenceFuzz, SingleWriterAndValueCorrectness)
{
    Rng rng(GetParam());
    std::map<Addr, RegVal> shadow;
    Cycle now = 0;
    // A small contended region: 16 lines of 64 B across 4 pages.
    auto rand_addr = [&] {
        return 0x40000 + (rng.below(128) * 8);
    };
    for (int op = 0; op < 4000; ++op) {
        const auto tile = static_cast<TileId>(rng.below(25));
        const Addr a = rand_addr();
        switch (rng.below(3)) {
          case 0: {
            RegVal data;
            const auto out = mem_.load(tile, a, data, now);
            now += out.latency;
            EXPECT_EQ(data, shadow.count(a) ? shadow[a] : 0)
                << "stale load at op " << op;
            break;
          }
          case 1: {
            const RegVal v = rng.next();
            now += mem_.store(tile, a, v, now).latency;
            shadow[a] = v;
            break;
          }
          default: {
            RegVal old;
            const RegVal expected = shadow.count(a) ? shadow[a] : 0;
            const RegVal swap = rng.next();
            now += mem_.atomicCas(tile, a, expected, swap, old, now)
                       .latency;
            EXPECT_EQ(old, expected);
            shadow[a] = swap;
            break;
          }
        }

        // Invariant: at most one tile holds any line Modified, and if
        // one does, no other tile holds it at all.
        if (op % 97 == 0) {
            const Addr line = a & ~Addr{15};
            int holders = 0, modified = 0;
            for (TileId t = 0; t < 25; ++t) {
                const arch::Mesi s = mem_.probeL15(t, line);
                holders += (s != arch::Mesi::Invalid);
                modified += (s == arch::Mesi::Modified);
            }
            EXPECT_LE(modified, 1);
            if (modified == 1) {
                EXPECT_EQ(holders, 1);
            }
        }
    }
}

TEST_P(CoherenceFuzz, L1dNeverHoldsWhatL15Lost)
{
    // L1D inclusion in the L1.5: a valid L1D line implies a valid L1.5
    // line (the write-through L1D is encapsulated by the L1.5).
    Rng rng(GetParam() ^ 0xABC);
    Cycle now = 0;
    for (int op = 0; op < 3000; ++op) {
        const auto tile = static_cast<TileId>(rng.below(25));
        const Addr a = 0x80000 + rng.below(512) * 16;
        RegVal data;
        if (rng.chance(0.6))
            now += mem_.load(tile, a, data, now).latency;
        else
            now += mem_.store(tile, a, rng.next(), now).latency;
        if (op % 31 == 0) {
            for (TileId t = 0; t < 25; ++t) {
                if (mem_.probeL1d(t, a) != arch::Mesi::Invalid) {
                    EXPECT_NE(mem_.probeL15(t, a), arch::Mesi::Invalid)
                        << "L1D/L1.5 inclusion violated at tile " << t;
                }
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoherenceFuzz,
                         testing::Values(11u, 222u, 3333u, 44444u));

// ---------------------------------------------------------------------
// NoC properties over all tile pairs.

TEST(NocProperties, AllPairsRouteWithinMeshBounds)
{
    config::PitonParams params;
    power::EnergyModel energy;
    power::EnergyLedger ledger;
    arch::NocNetwork noc(params, energy, ledger);
    for (TileId s = 0; s < 25; ++s) {
        for (TileId d = 0; d < 25; ++d) {
            arch::Packet p;
            p.src = s;
            p.dst = d;
            p.flits = {arch::makeHeaderFlit(d, s, 0, 1)};
            const auto r = noc.send(p);
            EXPECT_LE(r.hops, 8u);
            EXPECT_LE(r.turns, 1u); // XY routing turns at most once
            EXPECT_EQ(r.hops, noc.hopsBetween(d, s)); // symmetric
            EXPECT_EQ(r.headLatency, r.hops + r.turns);
        }
    }
}

TEST(NocProperties, EnergyMonotonicInToggledBits)
{
    power::EnergyModel energy;
    double prev = -1.0;
    for (std::uint32_t bits = 0; bits <= 64; ++bits) {
        const double e = energy.nocHopEnergy(bits).total();
        EXPECT_GT(e, prev);
        prev = e;
    }
}

TEST(NocProperties, RepeatedIdenticalFlitsCostRouterOnly)
{
    config::PitonParams params;
    power::EnergyModel energy;
    power::EnergyLedger ledger;
    arch::NocNetwork noc(params, energy, ledger);
    arch::Packet p;
    p.src = 0;
    p.dst = 4;
    p.flits.assign(7, 0x1234567812345678ULL);
    noc.send(p); // prime the links
    const auto r = noc.send(p); // identical flits: zero toggles
    const double per_flit_hop =
        jToPj(r.energyJ) / (7.0 * 4.0 + 7.0 /*ejection*/);
    EXPECT_NEAR(per_flit_hop, energy.params().nocRouterFlitPj, 0.01);
}

// ---------------------------------------------------------------------
// EPI monotonicity in operand activity, across all variant classes.

class EpiActivity : public testing::TestWithParam<isa::InstClass>
{
};

TEST_P(EpiActivity, EnergyIsAffineAndMonotonicInActivity)
{
    power::EnergyModel m;
    double prev = -1.0;
    for (std::uint32_t act = 0; act <= 128; act += 8) {
        const double e =
            m.instructionEnergy(GetParam(), act).onChipCoreAndSram();
        EXPECT_GE(e, prev);
        prev = e;
    }
    // Affine: midpoint equals average of endpoints.
    const double lo = m.instructionEnergy(GetParam(), 0).total();
    const double hi = m.instructionEnergy(GetParam(), 128).total();
    const double mid = m.instructionEnergy(GetParam(), 64).total();
    EXPECT_NEAR(mid, 0.5 * (lo + hi), 1e-18);
}

INSTANTIATE_TEST_SUITE_P(
    AllClasses, EpiActivity,
    testing::Values(isa::InstClass::IntSimple, isa::InstClass::IntMul,
                    isa::InstClass::IntDiv, isa::InstClass::FpAddD,
                    isa::InstClass::FpMulD, isa::InstClass::FpDivD,
                    isa::InstClass::FpAddS, isa::InstClass::FpMulS,
                    isa::InstClass::FpDivS, isa::InstClass::Load,
                    isa::InstClass::Store, isa::InstClass::Atomic),
    [](const testing::TestParamInfo<isa::InstClass> &info) {
        std::string name = isa::className(info.param);
        for (auto &ch : name)
            if (ch == '-')
                ch = '_';
        return name;
    });

// ---------------------------------------------------------------------
// All EPI variant programs assemble, loop, and stay within the L1I.

class EpiVariantProgram
    : public testing::TestWithParam<workloads::EpiVariant>
{
};

TEST_P(EpiVariantProgram, GeneratesValidInfiniteLoopOnEveryTile)
{
    for (const TileId tile : {0u, 12u, 24u}) {
        for (const auto pattern :
             {workloads::OperandPattern::Minimum,
              workloads::OperandPattern::Random,
              workloads::OperandPattern::Maximum}) {
            const isa::Program p =
                workloads::makeEpiProgram(GetParam(), pattern, tile);
            EXPECT_LE(p.footprintBytes(), 16u * 1024);
            // An infinite loop: some backward branch exists.
            bool has_backward = false;
            for (std::uint32_t i = 0; i < p.size(); ++i) {
                const auto &inst = p.at(i);
                if (isa::isBranch(inst.op) && inst.target <= i)
                    has_backward = true;
            }
            EXPECT_TRUE(has_backward) << GetParam().label;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, EpiVariantProgram,
    testing::ValuesIn(workloads::epiVariants()),
    [](const testing::TestParamInfo<workloads::EpiVariant> &info) {
        std::string name = info.param.label;
        for (auto &ch : name)
            if (!std::isalnum(static_cast<unsigned char>(ch)))
                ch = '_';
        return name + std::to_string(info.index);
    });

// ---------------------------------------------------------------------
// Assembler robustness: garbage never crashes, only throws AsmError.

TEST(AssemblerFuzz, RandomGarbageThrowsCleanErrors)
{
    Rng rng(99);
    const char charset[] =
        "abcdefghijklmnopqrstuvwxyz%r0123456789[]+-, \t\n!";
    for (int trial = 0; trial < 500; ++trial) {
        std::string src;
        const auto len = 1 + rng.below(120);
        for (std::uint64_t i = 0; i < len; ++i)
            src += charset[rng.below(sizeof(charset) - 1)];
        try {
            const isa::Program p = isa::assemble(src);
            (void)p; // valid programs are fine too
        } catch (const isa::AsmError &) {
            // expected for most garbage
        }
    }
    SUCCEED();
}

TEST(AssemblerFuzz, MutatedValidProgramNeverCrashes)
{
    Rng rng(7);
    const std::string base = "loop:\n    add %r1, %r2, %r3\n"
                             "    ldx [%r1 + 8], %r4\n    cmp %r3, %r4\n"
                             "    bne loop\n    halt\n";
    for (int trial = 0; trial < 300; ++trial) {
        std::string src = base;
        // Flip a few characters.
        for (int k = 0; k < 3; ++k)
            src[rng.below(src.size())] =
                static_cast<char>(32 + rng.below(90));
        try {
            isa::assemble(src);
        } catch (const isa::AsmError &) {
        }
    }
    SUCCEED();
}

} // namespace
} // namespace piton
