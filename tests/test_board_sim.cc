/**
 * @file
 * Tests for the test-board measurement chain and the integrated
 * System, including the Table V calibration checks.
 */

#include <gtest/gtest.h>

#include "board/measurement.hh"
#include "board/test_board.hh"
#include "isa/assembler.hh"
#include "sim/system.hh"

namespace piton
{
namespace
{

TEST(TestBoard, RemoteSenseHoldsSocketVoltage)
{
    board::TestBoard b;
    EXPECT_DOUBLE_EQ(b.socketVoltage(power::Rail::Vdd, 2.0), 1.0);
    b.channel(power::Rail::Vdd).remoteSense = false;
    EXPECT_LT(b.socketVoltage(power::Rail::Vdd, 2.0), 1.0);
}

TEST(TestBoard, DieSeesIrDropBelowSocket)
{
    board::TestBoard b;
    const double die_v = b.dieVoltage(power::Rail::Vdd, 2.0);
    EXPECT_LT(die_v, 1.0);
    EXPECT_NEAR(die_v, 1.0 - 2.0 * 0.030, 1e-12);
}

TEST(TestBoard, SampleIsNoisyButUnbiased)
{
    board::TestBoard b(99);
    RunningStats s;
    for (int i = 0; i < 2000; ++i)
        s.add(b.sampleRail(power::Rail::Vdd, 2.0).powerW());
    EXPECT_NEAR(s.mean(), 2.0, 0.002);
    // Noise level consistent with the paper's +/-1.5 mW error bars.
    EXPECT_GT(s.stddev(), 0.0003);
    EXPECT_LT(s.stddev(), 0.004);
}

TEST(TestBoard, SupplySetpointOutOfRangeIsRejected)
{
    board::TestBoard b;
    EXPECT_THROW(b.setSupply(power::Rail::Vdd, 3.0), std::logic_error);
}

TEST(Measurement, CollectsRequestedSampleCount)
{
    board::TestBoard b(5);
    const board::PowerMeasurement m =
        board::collectMeasurement(b, 128, [] {
            return std::array<double, 3>{1.0, 0.5, 0.1};
        });
    EXPECT_EQ(m.vddW.count(), 128u);
    EXPECT_NEAR(m.vddW.mean(), 1.0, 0.005);
    EXPECT_NEAR(m.vcsW.mean(), 0.5, 0.005);
    EXPECT_NEAR(m.vioW.mean(), 0.1, 0.005);
    EXPECT_NEAR(m.onChipMeanW(), 1.5, 0.01);
}

class SystemTest : public testing::Test
{
  protected:
    sim::SystemOptions opts_;
};

TEST_F(SystemTest, StaticPowerMatchesTableV)
{
    sim::System sys(opts_);
    const auto m = sys.measureStatic();
    // Chip #2: 389.3 +/- 1.5 mW at room temperature.
    EXPECT_NEAR(wToMw(m.onChipMeanW()), 389.3, 8.0);
    EXPECT_LT(wToMw(m.onChipStddevW()), 5.0);
}

TEST_F(SystemTest, IdlePowerMatchesTableV)
{
    sim::System sys(opts_);
    const auto m = sys.measure(); // no programs loaded: idle
    // Chip #2: 2015.3 +/- 1.5 mW at 500.05 MHz.
    EXPECT_NEAR(wToMw(m.onChipMeanW()), 2015.3, 40.0);
    // Closed-form helper agrees with the measured path.
    EXPECT_NEAR(sys.idlePowerW(), m.onChipMeanW(), 0.05);
}

TEST_F(SystemTest, Chip3IdleIsLowerThanChip2)
{
    sim::System sys2(opts_);
    sim::SystemOptions o3 = opts_;
    o3.chipId = 3;
    sim::System sys3(o3);
    // Chip #3: idle 1906.2 mW vs Chip #2's 2015.3 mW (Section IV-H).
    const double idle2 = wToMw(sys2.idlePowerW());
    const double idle3 = wToMw(sys3.idlePowerW());
    EXPECT_NEAR(idle2 - idle3, 109.0, 40.0);
    EXPECT_NEAR(idle3, 1906.2, 40.0);
}

TEST_F(SystemTest, RunningWorkRaisesMeasuredPower)
{
    sim::System idle_sys(opts_);
    const double idle = idle_sys.measure(32).onChipMeanW();

    sim::System busy_sys(opts_);
    const isa::Program p = isa::assemble(R"(
        set 0, %r1
    loop:
        add %r1, 1, %r1
        xor %r1, %r2, %r3
        and %r3, %r2, %r4
        cmp %r1, 0
        bne loop
        halt
    )");
    for (TileId t = 0; t < 25; ++t)
        busy_sys.loadProgram(t, 0, &p);
    const double busy = busy_sys.measure(32).onChipMeanW();
    EXPECT_GT(busy, idle + 0.2); // 25 active cores add >200 mW
    EXPECT_LT(busy, idle + 2.0);
}

TEST_F(SystemTest, VoltageScalingChangesIdlePower)
{
    sim::SystemOptions low = opts_;
    low.vddV = 0.8;
    low.vcsV = 0.85;
    low.coreClockMhz = 285.74;
    sim::System low_sys(low);

    sim::SystemOptions high = opts_;
    high.vddV = 1.1;
    high.vcsV = 1.15;
    high.coreClockMhz = 600.06;
    sim::System high_sys(high);

    const double p_low = low_sys.idlePowerW();
    const double p_nom = sim::System(opts_).idlePowerW();
    const double p_high = high_sys.idlePowerW();
    EXPECT_LT(p_low, 0.65 * p_nom);
    EXPECT_GT(p_high, 1.35 * p_nom); // super-linear growth (Fig. 10)
}

TEST_F(SystemTest, RunToCompletionSplitsActiveAndIdleEnergy)
{
    sim::System sys(opts_);
    const isa::Program p = isa::assemble(R"(
        set 0, %r1
    loop:
        add %r1, 1, %r1
        cmp %r1, 20000
        bl loop
        halt
    )");
    sys.loadProgram(0, 0, &p);
    const sim::CompletionResult r = sys.runToCompletion(10'000'000);
    EXPECT_TRUE(r.completed);
    EXPECT_GT(r.cycles, 20000u * 5 - 1000);
    EXPECT_GT(r.activeEnergyJ, 0.0);
    EXPECT_GT(r.idleEnergyJ, r.activeEnergyJ); // 1 core of 25 active
    EXPECT_NEAR(r.onChipEnergyJ, r.activeEnergyJ + r.idleEnergyJ, 1e-12);
    EXPECT_NEAR(r.seconds, r.cycles / sys.coreClockHz(), 1e-12);
}

TEST_F(SystemTest, WindowPowersAdvanceThermalState)
{
    sim::System sys(opts_);
    const double t0 = sys.dieTempC();
    for (int i = 0; i < 2000; ++i)
        sys.windowTruePowers(5000);
    EXPECT_GT(sys.dieTempC(), t0); // 2 W idle warms the die
}

TEST_F(SystemTest, MeasurementErrorMatchesPaperScale)
{
    sim::System sys(opts_);
    const auto m = sys.measure();
    // Table V reports +/-1.5 mW on ~2 W signals.
    EXPECT_GT(wToMw(m.onChipStddevW()), 0.3);
    EXPECT_LT(wToMw(m.onChipStddevW()), 6.0);
}

} // namespace
} // namespace piton
