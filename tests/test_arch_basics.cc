/**
 * @file
 * Unit tests for the architecture substrates: functional memory,
 * cache arrays, NoC routing/energy, chipset latency chain, MITTS.
 */

#include <gtest/gtest.h>

#include "arch/cache.hh"
#include "arch/chipset.hh"
#include "arch/memory.hh"
#include "arch/mitts.hh"
#include "arch/noc.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "config/piton_params.hh"
#include "power/energy_model.hh"

namespace piton::arch
{
namespace
{

TEST(MainMemory, ZeroFillAndRoundTrip)
{
    MainMemory m;
    EXPECT_EQ(m.read64(0x1000), 0u);
    EXPECT_EQ(m.pageCount(), 0u);
    m.write64(0x1000, 0xDEADBEEF12345678ULL);
    EXPECT_EQ(m.read64(0x1000), 0xDEADBEEF12345678ULL);
    EXPECT_EQ(m.read64(0x1008), 0u);
    EXPECT_EQ(m.pageCount(), 1u);
}

TEST(MainMemory, PagesAreIndependent)
{
    MainMemory m;
    m.write64(0x0, 1);
    m.write64(0x10000, 2);
    m.write64(0xFFFFFFF000ULL, 3);
    EXPECT_EQ(m.read64(0x0), 1u);
    EXPECT_EQ(m.read64(0x10000), 2u);
    EXPECT_EQ(m.read64(0xFFFFFFF000ULL), 3u);
    EXPECT_EQ(m.pageCount(), 3u);
}

TEST(MainMemory, UnalignedAccessPanics)
{
    MainMemory m;
    EXPECT_THROW(m.read64(0x1001), std::logic_error);
    EXPECT_THROW(m.write64(0x1004, 1), std::logic_error);
}

TEST(MainMemory, BlockRead)
{
    MainMemory m;
    for (Addr a = 0; a < 64; a += 8)
        m.write64(0x2000 + a, a);
    std::vector<RegVal> block;
    m.readBlock(0x2000, 64, block);
    ASSERT_EQ(block.size(), 8u);
    EXPECT_EQ(block[0], 0u);
    EXPECT_EQ(block[7], 56u);
}

class CacheArrayTest : public testing::Test
{
  protected:
    config::CacheParams params_{8 * 1024, 4, 16}; // the L1D geometry
};

TEST_F(CacheArrayTest, GeometryFromParams)
{
    CacheArray c(params_);
    EXPECT_EQ(c.numSets(), 128u);
    EXPECT_EQ(c.ways(), 4u);
    EXPECT_EQ(c.lineBytes(), 16u);
    EXPECT_EQ(c.validCount(), 0u);
}

TEST_F(CacheArrayTest, MissThenHit)
{
    CacheArray c(params_);
    EXPECT_FALSE(c.access(0x1000, 1));
    c.fill(0x1000, Mesi::Shared, 1);
    EXPECT_TRUE(c.access(0x1000, 2));
    EXPECT_TRUE(c.access(0x100F, 3)); // same 16 B line
    EXPECT_FALSE(c.access(0x1010, 4)); // next line
}

TEST_F(CacheArrayTest, LruEvictionWithinSet)
{
    CacheArray c(params_);
    // Five lines aliasing to set 0 (stride = sets * lineBytes = 2048).
    const Addr stride = 128 * 16;
    for (int i = 0; i < 4; ++i)
        c.fill(stride * static_cast<Addr>(i), Mesi::Shared,
               static_cast<Cycle>(i + 1));
    // Touch line 0 so line 1 becomes LRU.
    EXPECT_TRUE(c.access(0, 10));
    const Eviction ev = c.fill(stride * 4, Mesi::Shared, 11);
    EXPECT_TRUE(ev.happened);
    EXPECT_EQ(ev.lineAddr, stride);
    EXPECT_TRUE(c.access(0, 12));
    EXPECT_FALSE(c.access(stride, 13));
}

TEST_F(CacheArrayTest, InvalidateAndStates)
{
    CacheArray c(params_);
    c.fill(0x40, Mesi::Modified, 1);
    EXPECT_EQ(c.probe(0x40), Mesi::Modified);
    EXPECT_TRUE(c.setState(0x40, Mesi::Shared));
    EXPECT_EQ(c.probe(0x40), Mesi::Shared);
    EXPECT_EQ(c.invalidate(0x40), Mesi::Shared);
    EXPECT_EQ(c.probe(0x40), Mesi::Invalid);
    EXPECT_EQ(c.invalidate(0x40), Mesi::Invalid); // idempotent
    EXPECT_FALSE(c.setState(0x40, Mesi::Modified));
}

TEST_F(CacheArrayTest, FillOfResidentLineUpdatesStateWithoutEviction)
{
    CacheArray c(params_);
    c.fill(0x80, Mesi::Shared, 1);
    const Eviction ev = c.fill(0x80, Mesi::Modified, 2);
    EXPECT_FALSE(ev.happened);
    EXPECT_EQ(c.probe(0x80), Mesi::Modified);
    EXPECT_EQ(c.validCount(), 1u);
}

TEST_F(CacheArrayTest, FlushAllEmptiesCache)
{
    CacheArray c(params_);
    c.fill(0x100, Mesi::Shared, 1);
    c.fill(0x200, Mesi::Modified, 2);
    c.flushAll();
    EXPECT_EQ(c.validCount(), 0u);
}

class NocTest : public testing::Test
{
  protected:
    config::PitonParams params_;
    power::EnergyModel energy_;
    power::EnergyLedger ledger_;
    NocNetwork noc_{params_, energy_, ledger_};
};

TEST_F(NocTest, HopAndTurnCounts)
{
    EXPECT_EQ(noc_.hopsBetween(0, 4), 4u);
    EXPECT_EQ(noc_.turnsBetween(0, 4), 0u);  // straight east
    EXPECT_EQ(noc_.hopsBetween(0, 20), 4u);
    EXPECT_EQ(noc_.turnsBetween(0, 20), 0u); // straight south
    EXPECT_EQ(noc_.hopsBetween(0, 24), 8u);
    EXPECT_EQ(noc_.turnsBetween(0, 24), 1u); // one XY turn
}

TEST_F(NocTest, LatencyIsHopsPlusTurnsPlusSerialization)
{
    Packet p;
    p.src = 0;
    p.dst = 9; // (4,1): 5 hops, 1 turn
    p.flits = {makeHeaderFlit(9, 0, 2, 1), 0, 0};
    const NocSendResult r = noc_.send(p);
    EXPECT_EQ(r.hops, 5u);
    EXPECT_EQ(r.turns, 1u);
    EXPECT_EQ(r.headLatency, 6u);
    EXPECT_EQ(r.packetLatency, 8u); // + 2 payload flits
}

TEST_F(NocTest, ZeroHopPacketChargesOnlyEjection)
{
    Packet p;
    p.src = 3;
    p.dst = 3;
    p.flits = {makeHeaderFlit(3, 3, 0, 1)};
    const NocSendResult r = noc_.send(p);
    EXPECT_EQ(r.hops, 0u);
    const double eject = jToPj(r.energyJ);
    EXPECT_NEAR(eject, energy_.params().nocRouterFlitPj, 0.01);
}

TEST_F(NocTest, FullSwitchingCostsMoreThanNoSwitching)
{
    // Prime the links, then send alternating all-ones/all-zeros (FSW)
    // vs all-zeros (NSW) payloads over the same 4-hop route.
    auto send_pattern = [&](RegVal a, RegVal b, int reps) {
        double total = 0.0;
        for (int i = 0; i < reps; ++i) {
            Packet p;
            p.src = 0;
            p.dst = 4;
            p.flits = {a, b, a, b, a, b, a};
            total += noc_.send(p).energyJ;
        }
        return total / reps;
    };
    const double nsw = send_pattern(0, 0, 10);
    const double fsw = send_pattern(0, ~0ULL, 10);
    EXPECT_GT(fsw, nsw * 2.5);
}

TEST_F(NocTest, EnergyScalesLinearlyWithHops)
{
    auto energy_for_dst = [&](TileId dst) {
        // Straight-line destinations: tiles 1..4.
        double total = 0.0;
        for (int i = 0; i < 8; ++i) {
            Packet p;
            p.src = 0;
            p.dst = dst;
            p.flits = {0ULL, ~0ULL, 0ULL, ~0ULL, 0ULL, ~0ULL, 0ULL};
            total += noc_.send(p).energyJ;
        }
        return total / 8;
    };
    const double e1 = energy_for_dst(1);
    const double e2 = energy_for_dst(2);
    const double e4 = energy_for_dst(4);
    EXPECT_NEAR((e2 - e1), (e4 - e2) / 2.0, 1e-12 + 0.05 * (e2 - e1));
    EXPECT_GT(e4, e1);
}

TEST_F(NocTest, StatsAccumulate)
{
    Packet p;
    p.src = 0;
    p.dst = 2;
    p.flits = {makeHeaderFlit(2, 0, 1, 1), 0xFF};
    noc_.send(p);
    EXPECT_EQ(noc_.stats().packets, 1u);
    EXPECT_EQ(noc_.stats().flits, 2u);
    // 2 flits x (2 hops + 1 ejection): every ledger-charged traversal
    // counts.
    EXPECT_EQ(noc_.stats().flitHops, 6u);
    noc_.resetStats();
    EXPECT_EQ(noc_.stats().packets, 0u);
}

TEST_F(NocTest, FlitHopsMatchLedgerChargedEvents)
{
    // With all-zero flits no link bit ever toggles, so every charged
    // event — link hop or ejection — costs exactly nocHopEnergy(0).
    // The ledger total must then equal flitHops x that cost: the EPF
    // denominator counts the same events the ledger charged.
    const double per_event = energy_.nocHopEnergy(0).total();

    // 0-hop (same-tile) packet: 3 flits, ejection only.
    Packet zero;
    zero.src = 7;
    zero.dst = 7;
    zero.flits = {0, 0, 0};
    noc_.send(zero);
    EXPECT_EQ(noc_.stats().flitHops, 3u);
    EXPECT_NEAR(ledger_.category(power::Category::Noc).total(),
                3.0 * per_event, 1e-18);

    // Multi-hop packet: 2 flits over 4 hops + ejection = 10 more.
    noc_.resetStats();
    power::EnergyLedger fresh;
    NocNetwork noc2(params_, energy_, fresh);
    Packet multi;
    multi.src = 0;
    multi.dst = 4;
    multi.flits = {0, 0};
    noc2.send(multi);
    EXPECT_EQ(noc2.stats().flitHops, 2u * (4u + 1u));
    EXPECT_NEAR(fresh.total().total(),
                static_cast<double>(noc2.stats().flitHops) * per_event,
                1e-18);
}

TEST_F(NocTest, ResetStatsClearsLinkState)
{
    // Latch all-ones onto the route's links, then reset.  The next
    // all-zero packet must cost the same as on a fresh network — no
    // toggle energy carried over from the pre-reset traffic.
    Packet prime;
    prime.src = 0;
    prime.dst = 4;
    prime.flits = {~0ULL, ~0ULL};
    noc_.send(prime);
    noc_.resetStats();

    Packet probe;
    probe.src = 0;
    probe.dst = 4;
    probe.flits = {0, 0};
    const double after_reset = noc_.send(probe).energyJ;

    power::EnergyLedger fresh_ledger;
    NocNetwork fresh(params_, energy_, fresh_ledger);
    EXPECT_DOUBLE_EQ(after_reset, fresh.send(probe).energyJ);
}

TEST_F(NocTest, ResetStatsCanPreserveLinkState)
{
    Packet prime;
    prime.src = 0;
    prime.dst = 4;
    prime.flits = {~0ULL, ~0ULL};
    noc_.send(prime);
    noc_.resetStats(/*preserve_link_state=*/true);
    EXPECT_EQ(noc_.stats().packets, 0u);

    // The first all-zero flit now toggles against the latched ones, so
    // it must cost strictly more than on a cleared network.
    Packet probe;
    probe.src = 0;
    probe.dst = 4;
    probe.flits = {0, 0};
    const double preserved = noc_.send(probe).energyJ;

    power::EnergyLedger fresh_ledger;
    NocNetwork fresh(params_, energy_, fresh_ledger);
    EXPECT_GT(preserved, fresh.send(probe).energyJ);
}

TEST_F(NocTest, ResetStatsCoversEveryCounter)
{
    // Guard test for the NocStats member list (see the static_assert
    // in noc.hh): exercise every counter, then verify delta() and
    // resetStats() cover each one.  A counter this test does not
    // exercise cannot be certified, so adding a member means
    // extending this test.
    Packet p;
    p.src = 0;
    p.dst = 6; // 2 hops + a turn
    p.flits = {~0ULL, 0ULL, ~0ULL};
    noc_.send(p);
    const NocStats before = noc_.stats();
    EXPECT_GT(before.packets, 0u);
    EXPECT_GT(before.flits, 0u);
    EXPECT_GT(before.flitHops, 0u);
    EXPECT_GT(before.toggledBits, 0u);

    // delta() against a snapshot isolates exactly the new traffic.
    noc_.send(p);
    const NocStats d = noc_.stats().delta(before);
    EXPECT_EQ(d.packets, 1u);
    EXPECT_EQ(d.flits, 3u);
    EXPECT_EQ(d.flitHops, 3u * (2u + 1u));
    EXPECT_GT(d.toggledBits, 0u);
    // Self-delta is all zeros on every member.
    const NocStats z = before.delta(before);
    EXPECT_EQ(z.packets, 0u);
    EXPECT_EQ(z.flits, 0u);
    EXPECT_EQ(z.flitHops, 0u);
    EXPECT_EQ(z.toggledBits, 0u);

    // resetStats() zeroes every member.
    noc_.resetStats();
    const NocStats after = noc_.stats();
    EXPECT_EQ(after.packets, 0u);
    EXPECT_EQ(after.flits, 0u);
    EXPECT_EQ(after.flitHops, 0u);
    EXPECT_EQ(after.toggledBits, 0u);
}

TEST(HeaderFlit, EncodesFields)
{
    const RegVal h = makeHeaderFlit(24, 3, 6, 9);
    EXPECT_EQ((h >> 48) & 0xFF, 24u);
    EXPECT_EQ((h >> 40) & 0xFF, 3u);
    EXPECT_EQ((h >> 32) & 0xFF, 6u);
    EXPECT_EQ(h & 0xFF, 9u);
}

class ChipsetTest : public testing::Test
{
  protected:
    power::EnergyModel energy_;
    power::EnergyLedger ledger_;
    Chipset chipset_{energy_, ledger_, 42};
};

TEST_F(ChipsetTest, Fig15StagesSumToNominalRoundTrip)
{
    // Fig. 15: ~395 total round-trip cycles = ~790 ns at 500.05 MHz.
    EXPECT_EQ(Chipset::nominalRoundTripCycles(), 395u);
    const double ns = 395.0 / 500.05e6 * 1e9;
    EXPECT_NEAR(ns, 790.0, 1.0);
    EXPECT_EQ(Chipset::memoryLatencyStages().size(), 13u);
    EXPECT_EQ(Chipset::memoryLatencyStages().front().component,
              "Tile Array");
}

TEST_F(ChipsetTest, OffChipPortionExcludesTileArray)
{
    EXPECT_EQ(Chipset::offChipPortionCycles(), 395u - 28u - 17u);
}

TEST_F(ChipsetTest, JitterAveragesToTableVII)
{
    RunningStats s;
    for (int i = 0; i < 20000; ++i)
        s.add(chipset_.memoryRoundTrip(0));
    // 395 nominal + mean 29 jitter = 424 average (Table VII).
    EXPECT_NEAR(s.mean(), 424.0, 1.0);
    EXPECT_GE(s.min(), 395.0);
    EXPECT_LE(s.max(), 453.0);
}

TEST_F(ChipsetTest, CrossingChargesVioAndBridge)
{
    chipset_.memoryRoundTrip(0);
    EXPECT_EQ(chipset_.stats().requests, 1u);
    EXPECT_EQ(chipset_.stats().dramAccesses, 2u); // 32-bit interface
    EXPECT_EQ(chipset_.stats().bridgeFlits, 12u); // 3 out + 9 back
    EXPECT_EQ(chipset_.stats().vioBeats, 24u);
    EXPECT_GT(ledger_.category(power::Category::ChipBridge)
                  .get(power::Rail::Vio),
              0.0);
}

TEST(Mitts, DisabledShaperNeverDelays)
{
    Mitts m;
    EXPECT_EQ(m.requestDepartureCycle(100), 100u);
    EXPECT_EQ(m.requestDepartureCycle(101), 101u);
    EXPECT_EQ(m.delayedRequests(), 0u);
}

TEST(Mitts, BinForCoversPowerOfTwoRanges)
{
    MittsParams p;
    p.numBins = 4;
    p.binCredits = {1, 1, 1, 1};
    Mitts m(p);
    EXPECT_EQ(m.binFor(0), 0u);
    EXPECT_EQ(m.binFor(1), 0u);
    EXPECT_EQ(m.binFor(2), 1u);
    EXPECT_EQ(m.binFor(3), 1u);
    EXPECT_EQ(m.binFor(4), 2u);
    EXPECT_EQ(m.binFor(100), 3u); // clamps to last bin
}

TEST(Mitts, ShapingDelaysBurstTraffic)
{
    MittsParams p;
    p.numBins = 4;
    p.binCredits = {0, 0, 2, 2}; // only long inter-arrival credits
    p.refillPeriod = 1000;
    Mitts m(p);
    // A burst of back-to-back requests exhausts credits quickly.
    Cycle now = 0;
    std::uint64_t delays = 0;
    for (int i = 0; i < 8; ++i) {
        const Cycle depart = m.requestDepartureCycle(now);
        delays += (depart > now);
        now = depart + 1;
    }
    EXPECT_GT(m.delayedRequests(), 0u);
    EXPECT_EQ(m.totalRequests(), 8u);
    EXPECT_GT(delays, 0u);
}

TEST(Mitts, CreditsRefillEachPeriod)
{
    MittsParams p;
    p.numBins = 2;
    p.binCredits = {1, 1};
    p.refillPeriod = 100;
    Mitts m(p);
    EXPECT_EQ(m.requestDepartureCycle(0), 0u);
    EXPECT_EQ(m.requestDepartureCycle(1), 1u);
    // Credits exhausted: the third request waits for the refill.
    const Cycle depart = m.requestDepartureCycle(2);
    EXPECT_GE(depart, 100u);
    // The refill consumed the long-gap credit; a gap-50 request maps
    // to the (now empty) long bin and stalls to the next refill.
    EXPECT_EQ(m.requestDepartureCycle(depart + 50), 200u);
}

} // namespace
} // namespace piton::arch
