/**
 * @file
 * Differential program fuzzer.
 *
 * A seeded generator builds random-but-always-terminating programs
 * over the modelled ISA (ALU, mul/div, FP, loads/stores, CAS, forward
 * branches, a bounded outer loop) and runs each one three ways on a
 * small multi-tile chip:
 *
 *   1. fast path      — the event-driven engine,
 *   2. legacy path    — the per-cycle reference stepping,
 *   3. checkpoint     — fast path interrupted at a seed-chosen cycle,
 *                       saved, restored into a fresh chip, resumed.
 *
 * All three must agree bit-for-bit: final register files (FP values as
 * raw bits), condition codes, per-thread counters, cycle counts, and
 * the full energy ledger.  A failure prints the seed and a replayable
 * disassembly so the case can be turned into a regression test.
 *
 * Program-shape invariants that make "random" safe:
 *  - address registers (r1-r4) are written only by the generated
 *    prologue, so every ldx/stx/casx address is 8-byte aligned;
 *  - conditional branches inside the body only jump forward;
 *  - the single backward branch is the outer loop, bounded by a
 *    dedicated counter register (r20) no body instruction touches.
 *
 * PITON_FUZZ_ITERS overrides the program count (CI runs a reduced
 * count under the sanitizers; the default exceeds the 200-program
 * acceptance floor).
 */

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "arch/piton_chip.hh"
#include "checkpoint/archive.hh"
#include "chip/chip_instance.hh"
#include "common/rng.hh"
#include "config/piton_params.hh"
#include "governor/governor.hh"
#include "isa/program.hh"
#include "power/energy_model.hh"
#include "sim/system.hh"

namespace
{

using namespace piton;

constexpr std::uint32_t kTiles = 4;
constexpr std::uint32_t kThreadsPerCore = 2;

// Register conventions (see file comment).
constexpr int kPrivBase = 1;   ///< per-hwid private region pointer
constexpr int kSharedBase = 2; ///< shared region pointer (all threads)
constexpr int kPrivAlt = 3;    ///< second private pointer
constexpr int kLockBase = 4;   ///< shared CAS target pointer
constexpr int kFirstData = 5, kLastData = 19;
constexpr int kLoopCounter = 20;

std::uint64_t
bitsOf(double d)
{
    std::uint64_t u = 0;
    std::memcpy(&u, &d, sizeof(u));
    return u;
}

/**
 * Generate one random program.  Two-phase: draw the whole body first
 * (recording where forward-branch targets land), then emit through
 * ProgramBuilder with the labels placed.
 */
isa::Program
generateProgram(std::uint64_t seed)
{
    Rng rng(seed * 0x9E3779B97F4A7C15ULL + 1);
    isa::ProgramBuilder b;

    // Prologue: region pointers.  Private regions are 4 KB per
    // hardware thread id; all displacements below stay inside them.
    b.rdhwid(kPrivBase)
        .slli(kPrivBase, kPrivBase, 12)
        .set(kSharedBase, 0x200000)
        .add(kPrivBase, kPrivBase, kSharedBase)
        .set(kSharedBase, 0x80000)
        .addi(kPrivAlt, kPrivBase, 2048)
        .set(kLockBase, 0x90000)
        .set(kLoopCounter, 0);
    for (int r = kFirstData; r <= kLastData; ++r)
        b.set(r, rng.next());
    for (int f = 0; f < 8; ++f)
        b.setfd(f, rng.uniform(-4.0, 4.0));

    const std::size_t body_len = 24 + rng.below(32);
    std::vector<std::function<void(isa::ProgramBuilder &)>> body;
    std::map<std::size_t, std::vector<std::string>> labels_at;
    body.reserve(body_len + 8);

    auto data_reg = [&] {
        return kFirstData
               + static_cast<int>(rng.below(kLastData - kFirstData + 1));
    };
    auto fp_reg = [&] { return static_cast<int>(rng.below(16)); };
    auto addr_reg = [&] {
        const int regs[] = {kPrivBase, kPrivBase, kPrivAlt, kSharedBase};
        return regs[rng.below(4)];
    };
    auto disp = [&] {
        return static_cast<std::int64_t>(8 * rng.below(64)); // < 512 B
    };

    while (body.size() < body_len) {
        const std::uint64_t kind = rng.below(100);
        if (kind < 35) { // reg-reg ALU
            const int rd = data_reg(), a = data_reg(), c = data_reg();
            switch (rng.below(8)) {
              case 0: body.push_back([=](auto &pb) { pb.add(rd, a, c); }); break;
              case 1: body.push_back([=](auto &pb) { pb.sub(rd, a, c); }); break;
              case 2: body.push_back([=](auto &pb) { pb.andr(rd, a, c); }); break;
              case 3: body.push_back([=](auto &pb) { pb.orr(rd, a, c); }); break;
              case 4: body.push_back([=](auto &pb) { pb.xorr(rd, a, c); }); break;
              case 5: body.push_back([=](auto &pb) { pb.mulx(rd, a, c); }); break;
              case 6: body.push_back([=](auto &pb) { pb.sdivx(rd, a, c); }); break;
              default: body.push_back([=](auto &pb) { pb.mov(rd, a); }); break;
            }
        } else if (kind < 45) { // ALU immediate
            const int rd = data_reg(), a = data_reg();
            const auto imm = static_cast<std::int64_t>(rng.below(4096));
            switch (rng.below(4)) {
              case 0: body.push_back([=](auto &pb) { pb.addi(rd, a, imm); }); break;
              case 1: body.push_back([=](auto &pb) { pb.subi(rd, a, imm); }); break;
              case 2: body.push_back([=](auto &pb) { pb.andi(rd, a, imm); }); break;
              default:
                body.push_back(
                    [=](auto &pb) { pb.slli(rd, a, imm % 63); });
                break;
            }
        } else if (kind < 60) { // FP
            const int rd = fp_reg(), a = fp_reg(), c = fp_reg();
            switch (rng.below(6)) {
              case 0: body.push_back([=](auto &pb) { pb.faddd(rd, a, c); }); break;
              case 1: body.push_back([=](auto &pb) { pb.fmuld(rd, a, c); }); break;
              case 2: body.push_back([=](auto &pb) { pb.fdivd(rd, a, c); }); break;
              case 3: body.push_back([=](auto &pb) { pb.fadds(rd, a, c); }); break;
              case 4: body.push_back([=](auto &pb) { pb.fmuls(rd, a, c); }); break;
              default: body.push_back([=](auto &pb) { pb.fdivs(rd, a, c); }); break;
            }
        } else if (kind < 75) { // loads
            const int rd = data_reg(), ra = addr_reg();
            const auto d = disp();
            body.push_back([=](auto &pb) { pb.ldx(rd, ra, d); });
        } else if (kind < 88) { // stores (ring pressure is the point)
            const int rs = data_reg(), ra = addr_reg();
            const auto d = disp();
            body.push_back([=](auto &pb) { pb.stx(rs, ra, d); });
        } else if (kind < 92) { // CAS on the shared lock word
            const int rd = data_reg(), cmp_reg = data_reg();
            body.push_back(
                [=](auto &pb) { pb.casx(rd, kLockBase, cmp_reg); });
        } else { // guarded forward skip
            const std::size_t here = body.size();
            const std::size_t span = 1 + rng.below(4);
            const std::size_t target = here + 1 + span;
            if (target >= body_len)
                continue; // no room before the loop tail; redraw
            std::string label = "f" + std::to_string(here);
            labels_at[target].push_back(label);
            const int a = data_reg(), c = data_reg();
            const std::uint64_t cond = rng.below(5);
            body.push_back([=](auto &pb) {
                pb.cmp(a, c);
                switch (cond) {
                  case 0: pb.beq(label); break;
                  case 1: pb.bne(label); break;
                  case 2: pb.bg(label); break;
                  case 3: pb.bl(label); break;
                  default: pb.ba(label); break;
                }
            });
        }
    }

    const std::uint64_t outer_iters = 2 + rng.below(4);
    b.label("loop");
    for (std::size_t i = 0; i < body.size(); ++i) {
        for (const auto &l : labels_at[i])
            b.label(l);
        body[i](b);
    }
    for (const auto &l : labels_at[body.size()])
        b.label(l);
    b.addi(kLoopCounter, kLoopCounter, 1)
        .cmpi(kLoopCounter, static_cast<std::int64_t>(outer_iters))
        .bl("loop")
        .halt();
    return b.build();
}

std::string
disassemble(const isa::Program &p, std::uint64_t seed)
{
    std::ostringstream os;
    os << "seed " << seed << ", " << p.size() << " instructions:\n";
    for (std::uint32_t i = 0; i < p.size(); ++i) {
        const isa::Instruction &in = p.instructions()[i];
        os << "  " << i << ": " << isa::mnemonic(in.op)
           << (in.fp ? " [fp]" : "") << " rd=" << int(in.rd)
           << " rs1=" << int(in.rs1);
        if (in.useImm)
            os << " imm=" << in.imm;
        else
            os << " rs2=" << int(in.rs2);
        if (isa::isBranch(in.op))
            os << " -> " << in.target;
        os << '\n';
    }
    return os.str();
}

/** Final observable state, FP as raw bits. */
struct FuzzFingerprint
{
    Cycle now = 0;
    std::uint64_t insts = 0;
    std::vector<std::uint64_t> threadWords;
    std::vector<std::uint64_t> ledgerBits;

    bool
    operator==(const FuzzFingerprint &o) const
    {
        return now == o.now && insts == o.insts
               && threadWords == o.threadWords
               && ledgerBits == o.ledgerBits;
    }
};

FuzzFingerprint
fingerprint(const arch::PitonChip &chip)
{
    FuzzFingerprint f;
    f.now = chip.now();
    f.insts = chip.totalInsts();
    for (TileId t = 0; t < kTiles; ++t) {
        const arch::Core &core = chip.core(t);
        for (ThreadId tid = 0; tid < kThreadsPerCore; ++tid) {
            const arch::ThreadState &th = core.thread(tid);
            for (const RegVal r : th.regs)
                f.threadWords.push_back(r);
            for (const RegVal r : th.fregs)
                f.threadWords.push_back(r);
            f.threadWords.push_back((th.cc.zero ? 1 : 0)
                                    | (th.cc.negative ? 2 : 0));
            f.threadWords.push_back(th.pc);
            f.threadWords.push_back(
                static_cast<std::uint64_t>(th.status));
            f.threadWords.push_back(th.instsExecuted);
            f.threadWords.push_back(th.loadRollbacks);
            f.threadWords.push_back(th.storeRollbacks);
        }
    }
    const auto &ledger = chip.ledger();
    for (std::size_t c = 0; c < power::kNumCategories; ++c)
        for (std::size_t rail = 0; rail < power::kNumRails; ++rail)
            f.ledgerBits.push_back(
                bitsOf(ledger.category(static_cast<power::Category>(c))
                           .get(static_cast<power::Rail>(rail))));
    return f;
}

struct ChipUnderTest
{
    config::PitonParams params;
    power::EnergyModel energy;
    arch::PitonChip chip;

    ChipUnderTest(const isa::Program *p, bool fast, bool drafting,
                  unsigned engine_threads = 1)
        : params(makeParams()),
          chip(params, chip::makeChip(2), energy, 17)
    {
        chip.setFastPath(fast);
        chip.setEngineThreads(engine_threads);
        if (drafting)
            chip.setExecDrafting(true);
        if (p != nullptr)
            for (TileId t = 0; t < kTiles; ++t)
                for (ThreadId tid = 0; tid < kThreadsPerCore; ++tid)
                    chip.loadProgram(t, tid, p);
    }

    static config::PitonParams
    makeParams()
    {
        config::PitonParams params;
        params.tileCount = kTiles;
        params.threadsPerCore = kThreadsPerCore;
        return params;
    }
};

constexpr Cycle kMaxCycles = 4'000'000;

unsigned
fuzzIterations()
{
    if (const char *s = std::getenv("PITON_FUZZ_ITERS")) {
        const long v = std::strtol(s, nullptr, 10);
        if (v > 0)
            return static_cast<unsigned>(v);
    }
    return 240;
}

void
runOneSeed(std::uint64_t seed)
{
    const isa::Program p = generateProgram(seed);
    Rng rng(seed ^ 0xD1B54A32D192ED03ULL);
    const bool drafting = rng.chance(0.25);

    // Reference: fast path, straight through (split into two run()
    // calls so the resumed flow below sees the same call pattern).
    ChipUnderTest fast(&p, true, drafting);
    const auto head = fast.chip.run(1 + rng.below(2000));
    const Cycle split = fast.chip.now();
    fast.chip.run(kMaxCycles);
    ASSERT_TRUE(head.cyclesElapsed > 0 || fast.chip.now() > 0);
    const FuzzFingerprint ref = fingerprint(fast.chip);
    ASSERT_LT(ref.now, kMaxCycles) << "program did not terminate\n"
                                   << disassemble(p, seed);

    // Legacy engine must agree bit-for-bit.
    ChipUnderTest legacy(&p, false, drafting);
    legacy.chip.run(split);
    legacy.chip.run(kMaxCycles);
    EXPECT_TRUE(fingerprint(legacy.chip) == ref)
        << "fast vs legacy divergence\n"
        << disassemble(p, seed);

    // The sharded engine at >1 thread must agree bit-for-bit too
    // (thread-count invariance of the charge replay, DESIGN.md §12;
    // requests above the tile count clamp, so 8 exercises the clamp).
    const unsigned mt_threads = (seed % 3 == 0) ? 8u : 2u;
    ChipUnderTest threaded(&p, true, drafting, mt_threads);
    threaded.chip.run(split);
    threaded.chip.run(kMaxCycles);
    EXPECT_TRUE(fingerprint(threaded.chip) == ref)
        << "sharded-engine divergence at " << mt_threads << " threads\n"
        << disassemble(p, seed);

    // Checkpoint at the split — taken from a *sharded* run, so stale
    // per-shard accounting would be caught — and restore into a fresh
    // chip (alternating restore engine), resume; must land on the same
    // final state.
    ChipUnderTest saver(&p, true, drafting, mt_threads);
    saver.chip.run(split);
    const std::vector<std::uint8_t> image = saver.chip.saveBytes();
    ChipUnderTest resumed(nullptr, (seed % 2) == 0, drafting,
                          (seed % 2) == 0 ? mt_threads : 1u);
    resumed.chip.restoreBytes(image);
    resumed.chip.run(kMaxCycles);
    EXPECT_TRUE(fingerprint(resumed.chip) == ref)
        << "checkpoint-resume divergence (split at cycle " << split
        << ", resume engine "
        << ((seed % 2) == 0 ? "fast" : "legacy") << ")\n"
        << disassemble(p, seed);
}

TEST(ProgramFuzz, DifferentialFastLegacyCheckpoint)
{
    const unsigned iters = fuzzIterations();
    for (std::uint64_t seed = 1; seed <= iters; ++seed) {
        SCOPED_TRACE("fuzz seed " + std::to_string(seed));
        runOneSeed(seed);
        if (::testing::Test::HasFatalFailure())
            return;
    }
}

// ---- directed checkpoint-boundary audits -----------------------------
//
// The generic fuzzer picks one split cycle per seed, which rarely lands
// a checkpoint on the exact cycles where transient microarchitectural
// state is live.  These audits force it: a dense sweep checkpointing at
// *every* cycle of a stress window, under the two mechanisms with the
// most checkpoint-shaped state — the store-buffer ring (head/count
// wraparound, drain in flight) and ExecD run-ahead bursts (drafting
// pair mid-window).

/** Back-to-back stores against a tiny ring so head wraps constantly
 *  and the buffer is usually non-empty (and often full) at any given
 *  checkpoint cycle. */
isa::Program
storePressureProgram()
{
    isa::ProgramBuilder b;
    b.rdhwid(1).slli(1, 1, 12).set(2, 0x200000).add(1, 1, 2);
    b.set(2, 0xA5A5).set(3, 0);
    b.label("loop");
    for (int i = 0; i < 6; ++i)
        b.stx(2, 1, (i % 3) * 8);
    b.ldx(4, 1, 0);
    b.addi(3, 3, 1);
    b.cmpi(3, 40);
    b.bl("loop");
    b.halt();
    return b.build();
}

void
denseSplitAudit(const isa::Program &p, std::uint32_t store_buffer_entries,
                bool drafting, const char *what)
{
    config::PitonParams params = ChipUnderTest::makeParams();
    params.storeBufferEntries = store_buffer_entries;

    auto make_chip = [&](power::EnergyModel &energy, bool load) {
        auto chip = std::make_unique<arch::PitonChip>(
            params, chip::makeChip(2), energy, 17);
        if (drafting)
            chip->setExecDrafting(true);
        if (load)
            for (TileId t = 0; t < kTiles; ++t)
                for (ThreadId tid = 0; tid < kThreadsPerCore; ++tid)
                    chip->loadProgram(t, tid, &p);
        return chip;
    };

    power::EnergyModel ref_energy;
    auto ref = make_chip(ref_energy, true);
    ref->run(kMaxCycles);
    const Cycle total = ref->now();
    ASSERT_LT(total, kMaxCycles) << what << ": program did not halt";

    // March a live chip forward one cycle at a time; checkpoint at
    // every cycle, resume each image in a fresh chip, and require the
    // resumed final state to match the straight-through run.
    power::EnergyModel live_energy;
    auto live = make_chip(live_energy, true);
    const FuzzFingerprint ref_fp = fingerprint(*ref);
    for (Cycle c = 0; c < std::min<Cycle>(total, 200); ++c) {
        live->run(1);
        const std::vector<std::uint8_t> image = live->saveBytes();
        power::EnergyModel resumed_energy;
        auto resumed = make_chip(resumed_energy, false);
        resumed->restoreBytes(image);
        resumed->run(kMaxCycles);
        const FuzzFingerprint got = fingerprint(*resumed);
        ASSERT_TRUE(got == ref_fp)
            << what << ": checkpoint at cycle " << live->now()
            << " resumed to a different final state";
    }
}

TEST(CheckpointBoundaryAudit, StoreBufferRingEveryCycle)
{
    denseSplitAudit(storePressureProgram(), /*store_buffer_entries=*/2,
                    /*drafting=*/false, "store-buffer ring");
}

TEST(CheckpointBoundaryAudit, StoreBufferRingDefaultDepth)
{
    denseSplitAudit(storePressureProgram(), /*store_buffer_entries=*/8,
                    /*drafting=*/false, "store-buffer ring (depth 8)");
}

TEST(CheckpointBoundaryAudit, DraftingBurstEveryCycle)
{
    // Identical programs on both threads of each core so ExecD pairs
    // them; checkpoints land mid-draft-window.
    isa::ProgramBuilder b;
    b.set(1, 0).set(2, 7);
    b.label("loop");
    for (int i = 0; i < 8; ++i)
        b.add(3, 3, 2).xorr(4, 4, 2);
    b.addi(1, 1, 1);
    b.cmpi(1, 60);
    b.bl("loop");
    b.halt();
    denseSplitAudit(b.build(), /*store_buffer_entries=*/8,
                    /*drafting=*/true, "ExecD run-ahead burst");
}

TEST(CheckpointBoundaryAudit, FuzzedProgramsDenseSplits)
{
    // A handful of generated programs under the dense-split harness,
    // small ring + drafting — the fuzz corpus meets the boundary audit.
    const unsigned iters = std::max(1u, fuzzIterations() / 48);
    for (std::uint64_t seed = 101; seed < 101 + iters; ++seed) {
        SCOPED_TRACE("dense-split seed " + std::to_string(seed));
        denseSplitAudit(generateProgram(seed), /*store_buffer_entries=*/2,
                        /*drafting=*/(seed % 2) == 0, "fuzzed program");
        if (::testing::Test::HasFatalFailure())
            return;
    }
}

// ---- governed differential runs --------------------------------------
//
// The same fuzz corpus under the closed DVFS loop (DESIGN.md §13): a
// full governed System runs each program across the legacy engine, the
// sharded engine at several thread counts, and a mid-run checkpoint
// migrated into a fresh governed System.  The control loop (epoch
// accumulators, duty gating, PID state) must not break the bit-identity
// contract: window powers and ledger sums compare as raw bits.

std::vector<std::uint64_t>
governedSystemBits(sim::System &sys)
{
    std::vector<std::uint64_t> bits;
    const auto &ledger = sys.pitonChip().ledger();
    for (std::size_t c = 0; c < power::kNumCategories; ++c)
        for (std::size_t rail = 0; rail < power::kNumRails; ++rail)
            bits.push_back(
                bitsOf(ledger.category(static_cast<power::Category>(c))
                           .get(static_cast<power::Rail>(rail))));
    bits.push_back(sys.pitonChip().totalInsts());
    bits.push_back(sys.pitonChip().now());
    bits.push_back(bitsOf(sys.sampleClockS()));
    return bits;
}

/**
 * One governed run of `p`: `windows` sample windows under `policy`.
 * With split > 0, the run is checkpointed after that many windows and
 * resumed in a fresh governed System (governor attached first, per the
 * restore contract).  Returns every window power plus the final system
 * bits.
 */
std::vector<std::uint64_t>
governedFuzzRun(const isa::Program &p, const std::string &policy,
                bool fast, unsigned threads, std::uint32_t windows,
                std::uint32_t split = 0)
{
    sim::SystemOptions opts;
    opts.fastPath = fast;
    opts.engineThreads = threads;

    const auto gov_params = [&] {
        governor::GovernorParams gp;
        gp.policy = policy;
        gp.epochWindows = 2;
        if (policy == "pidcap")
            gp.capW = 2.0;
        return gp;
    }();

    auto sys = std::make_unique<sim::System>(opts);
    auto gov = governor::makeGovernor(gov_params);
    sys->attachGovernor(gov.get());
    for (TileId t = 0; t < opts.cfg.piton.tileCount; ++t)
        for (ThreadId tid = 0; tid < kThreadsPerCore; ++tid)
            sys->loadProgram(t, tid, &p);

    std::vector<std::uint64_t> bits;
    for (std::uint32_t w = 0; w < windows; ++w) {
        if (split != 0 && w == split) {
            const std::vector<std::uint8_t> image = sys->saveBytes();
            sys = std::make_unique<sim::System>(opts);
            gov = governor::makeGovernor(gov_params);
            sys->attachGovernor(gov.get());
            sys->restoreBytes(image);
        }
        const auto powers =
            sys->windowTruePowers(opts.cyclesPerSample);
        for (const double v : powers)
            bits.push_back(bitsOf(v));
    }
    const auto tail = governedSystemBits(*sys);
    bits.insert(bits.end(), tail.begin(), tail.end());
    return bits;
}

TEST(GovernedFuzz, DifferentialGovernedRuns)
{
    const unsigned iters = std::max(1u, fuzzIterations() / 30);
    const char *const policies[] = {"ondemand", "pidcap", "theas"};
    constexpr std::uint32_t kWindows = 7; // odd: ends mid-epoch
    for (std::uint64_t seed = 301; seed < 301 + iters; ++seed) {
        SCOPED_TRACE("governed fuzz seed " + std::to_string(seed));
        const isa::Program p = generateProgram(seed);
        const std::string policy = policies[seed % 3];
        const auto ref =
            governedFuzzRun(p, policy, /*fast=*/false, 1, kWindows);

        for (const unsigned threads : {1u, 2u, 8u}) {
            EXPECT_EQ(governedFuzzRun(p, policy, true, threads, kWindows),
                      ref)
                << policy << " diverged at " << threads << " threads";
        }
        // Checkpoint both at an epoch boundary (2) and mid-epoch (3).
        const std::uint32_t split = 2 + (seed % 2);
        EXPECT_EQ(
            governedFuzzRun(p, policy, true, 8, kWindows, split), ref)
            << policy << " diverged across checkpoint at window "
            << split;
        if (::testing::Test::HasFatalFailure())
            return;
    }
}

} // namespace
