/**
 * @file
 * Search determinism equivalence suite (DESIGN.md §16): a search at a
 * fixed seed must replay bit-identically — same best candidate bytes,
 * same score, same trajectory — across oracle thread counts, across
 * reruns, and across oracle backends (executor-direct vs the service
 * scheduler path).  This is the same contract bench_search --verify
 * gates at larger budgets; here it runs on a small task so ctest stays
 * fast.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "search/searcher.hh"
#include "service/client.hh"
#include "service/scheduler.hh"
#include "workloads/microbenchmarks.hh"

namespace
{

using namespace piton;
using namespace piton::search;

SearchTask
smallTask()
{
    SearchTask task;
    task.space = defaultSpace(/*cores=*/2, /*chip_id=*/2);
    task.objective.goal = Goal::MinEpi;
    task.base.chipId = 2;
    task.base.workload.bench =
        static_cast<std::uint16_t>(workloads::Microbench::Phased);
    task.base.workload.iterations = 2;
    task.base.workload.threadsPerCore = 1;
    task.base.maxCycles = 50'000'000;
    task.exploreIterations = 1;
    return task;
}

SearcherOptions
smallOpts()
{
    SearcherOptions opts;
    opts.seed = 5;
    opts.budget = 10;
    opts.batch = 4;
    opts.population = 4;
    return opts;
}

void
expectIdentical(const SearchResult &a, const SearchResult &b,
                const std::string &what)
{
    EXPECT_EQ(candidateBytes(a.best), candidateBytes(b.best)) << what;
    EXPECT_EQ(a.bestScore, b.bestScore) << what;
    EXPECT_EQ(a.finalScore, b.finalScore) << what;
    ASSERT_EQ(a.trajectory.size(), b.trajectory.size()) << what;
    for (std::size_t i = 0; i < a.trajectory.size(); ++i) {
        EXPECT_EQ(a.trajectory[i].oracleCalls, b.trajectory[i].oracleCalls)
            << what << " point " << i;
        EXPECT_EQ(a.trajectory[i].bestScore, b.trajectory[i].bestScore)
            << what << " point " << i;
    }
}

TEST(SearchEquiv, EveryEngineIsThreadCountInvariant)
{
    const SearchTask task = smallTask();
    const SearcherOptions opts = smallOpts();
    for (const std::string &engine : searcherNames()) {
        InProcessOracle serial(1), parallel(3);
        const SearchResult r1 =
            makeSearcher(engine)->search(task, serial, opts);
        const SearchResult r3 =
            makeSearcher(engine)->search(task, parallel, opts);
        expectIdentical(r1, r3, engine + " threads 1 vs 3");
        EXPECT_EQ(r1.oracleCalls, opts.budget);
        EXPECT_LT(r1.bestScore, kInfeasibleBase)
            << engine << " found nothing feasible";
    }
}

TEST(SearchEquiv, RerunAtTheSameSeedReplaysBitIdentically)
{
    const SearchTask task = smallTask();
    const SearcherOptions opts = smallOpts();
    for (const std::string &engine : searcherNames()) {
        InProcessOracle a(2), b(2);
        expectIdentical(makeSearcher(engine)->search(task, a, opts),
                        makeSearcher(engine)->search(task, b, opts),
                        engine + " replay");
    }
}

TEST(SearchEquiv, ServiceBackendMatchesExecutorDirectOracle)
{
    const SearchTask task = smallTask();
    const SearcherOptions opts = smallOpts();

    InProcessOracle direct(2);
    const SearchResult rd =
        makeSearcher("sa")->search(task, direct, opts);

    service::SchedulerConfig cfg;
    cfg.threads = 1;
    service::ExperimentScheduler sched(cfg);
    service::LocalClient local(sched);
    ClientOracle through_service(local);
    const SearchResult rs =
        makeSearcher("sa")->search(task, through_service, opts);

    expectIdentical(rd, rs, "in-process vs service scheduler");
}

TEST(SearchEquiv, RevisitsHitTheOracleMemo)
{
    // Two identical searches against ONE oracle: the second is pure
    // replay, so every one of its evaluations must be a memo hit.
    const SearchTask task = smallTask();
    const SearcherOptions opts = smallOpts();
    InProcessOracle oracle(2);
    const SearchResult first =
        makeSearcher("sa")->search(task, oracle, opts);
    const SearchResult second =
        makeSearcher("sa")->search(task, oracle, opts);
    expectIdentical(first, second, "shared-oracle replay");
    EXPECT_EQ(second.cacheHits, second.oracleCalls);
    EXPECT_EQ(second.cacheHitRatio, 1.0);
}

} // namespace
