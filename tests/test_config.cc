/**
 * @file
 * Unit tests for the configuration module (Tables I-III) and the
 * kv-file parser that scenario descriptions use.
 */

#include <gtest/gtest.h>

#include "config/kv_file.hh"
#include "config/piton_params.hh"

namespace piton::config
{
namespace
{

TEST(PitonParams, TableIValues)
{
    const PitonParams p;
    EXPECT_EQ(p.process, "IBM 32nm SOI");
    EXPECT_DOUBLE_EQ(p.dieAreaMm2, 36.0);
    EXPECT_GT(p.transistorCount, 460'000'000u - 1);
    EXPECT_DOUBLE_EQ(p.nominalVddV, 1.00);
    EXPECT_DOUBLE_EQ(p.nominalVcsV, 1.05);
    EXPECT_DOUBLE_EQ(p.nominalVioV, 1.80);
    EXPECT_EQ(p.tileCount, 25u);
    EXPECT_EQ(p.meshWidth * p.meshHeight, p.tileCount);
    EXPECT_EQ(p.nocCount, 3u);
    EXPECT_EQ(p.nocWidthBits, 64u);
    EXPECT_EQ(p.threadsPerCore, 2u);
    EXPECT_EQ(p.totalThreads, 50u);
    EXPECT_EQ(p.corePipelineDepth, 6u);
    EXPECT_EQ(p.storeBufferEntries, 8u);
}

TEST(PitonParams, CacheGeometry)
{
    const PitonParams p;
    EXPECT_EQ(p.l1i.sizeBytes, 16u * 1024);
    EXPECT_EQ(p.l1i.associativity, 4u);
    EXPECT_EQ(p.l1i.lineBytes, 32u);
    EXPECT_EQ(p.l1i.numSets(), 128u);
    EXPECT_EQ(p.l1d.sizeBytes, 8u * 1024);
    EXPECT_EQ(p.l1d.lineBytes, 16u);
    EXPECT_EQ(p.l1d.numSets(), 128u);
    EXPECT_EQ(p.l15.sizeBytes, 8u * 1024);
    EXPECT_EQ(p.l2Slice.sizeBytes, 64u * 1024);
    EXPECT_EQ(p.l2Slice.lineBytes, 64u);
    EXPECT_EQ(p.l2Slice.numSets(), 256u);
    // 1.6 MB aggregate L2 (Table I).
    EXPECT_EQ(p.totalL2Bytes(), 1600u * 1024);
}

TEST(PitonParams, TableIIFrequencies)
{
    const SystemFrequencies f;
    EXPECT_DOUBLE_EQ(f.gatewayToPitonMhz, 180.0);
    EXPECT_DOUBLE_EQ(f.chipsetLogicMhz, 280.0);
    EXPECT_DOUBLE_EQ(f.dramPhyMhz, 800.0);
    EXPECT_DOUBLE_EQ(f.dramControllerMhz, 200.0);
    EXPECT_DOUBLE_EQ(f.sdCardSpiMhz, 20.0);
    EXPECT_DOUBLE_EQ(f.uartBps, 115200.0);
}

TEST(PitonParams, TableIIIDefaults)
{
    const MeasurementDefaults d;
    EXPECT_DOUBLE_EQ(d.vddV, 1.00);
    EXPECT_DOUBLE_EQ(d.vcsV, 1.05);
    EXPECT_DOUBLE_EQ(d.vioV, 1.80);
    EXPECT_DOUBLE_EQ(d.coreClockMhz, 500.05);
    EXPECT_EQ(d.monitorSamples, 128u);
    EXPECT_DOUBLE_EQ(d.monitorPollHz, 17.0);
}

TEST(Mesh, CoordinateRoundTrip)
{
    const PitonParams p;
    for (TileId t = 0; t < p.tileCount; ++t) {
        const TileCoord c = tileCoord(p, t);
        EXPECT_EQ(tileIdAt(p, c.x, c.y), t);
    }
}

TEST(Mesh, HopDistances)
{
    const PitonParams p;
    EXPECT_EQ(hopDistance(p, 0, 0), 0u);
    EXPECT_EQ(hopDistance(p, 0, 1), 1u);   // one hop east
    EXPECT_EQ(hopDistance(p, 0, 2), 2u);
    EXPECT_EQ(hopDistance(p, 0, 9), 5u);   // the paper's 5-hop example
    EXPECT_EQ(hopDistance(p, 0, 24), 8u);  // full-chip diagonal
    EXPECT_EQ(hopDistance(p, 24, 0), 8u);  // symmetric
    EXPECT_EQ(hopDistance(p, 12, 12), 0u);
}

TEST(Mesh, MaxHopCountIsEight)
{
    const PitonParams p;
    std::uint32_t max_hops = 0;
    for (TileId a = 0; a < p.tileCount; ++a)
        for (TileId b = 0; b < p.tileCount; ++b)
            max_hops = std::max(max_hops, hopDistance(p, a, b));
    EXPECT_EQ(max_hops, 8u); // "the maximum hop count for a 5x5 mesh"
}

// ---- kv-file parser (scenario descriptions, DESIGN.md §13) ----------

TEST(KvFile, ParsesCommentsCaseAndLastWins)
{
    const KvFile kv = KvFile::parseText(R"(
# full-line comment
Tiles   = 12          # trailing comment
CAP_W   = 2.5         ; alt comment marker
name    = first
name    = second wins

governor = pidcap
)");
    EXPECT_EQ(kv.entries().size(), 5u);
    EXPECT_TRUE(kv.has("tiles")); // keys are lowercased on parse
    EXPECT_EQ(kv.getUint("tiles", 0), 12u);
    EXPECT_DOUBLE_EQ(kv.getDouble("cap_w", 0.0), 2.5);
    EXPECT_EQ(kv.get("name"), "second wins"); // duplicates: last wins
    EXPECT_EQ(kv.get("governor"), "pidcap");
    EXPECT_EQ(kv.get("missing", "def"), "def");
    EXPECT_NO_THROW(kv.checkUnknownKeys("test")); // all consumed above
}

TEST(KvFile, MalformedLinesThrowWithLineNumbers)
{
    EXPECT_THROW(KvFile::parseText("tiles 12"), KvError);   // no '='
    EXPECT_THROW(KvFile::parseText("= 12"), KvError);       // empty key
    EXPECT_THROW(KvFile::parseText("til:es = 12"), KvError); // bad char
    try {
        KvFile::parseText("a = 1\nb 2\n", "f.kv");
        FAIL() << "malformed line accepted";
    } catch (const KvError &e) {
        EXPECT_NE(std::string(e.what()).find("f.kv:2"),
                  std::string::npos);
    }
}

TEST(KvFile, TypedAccessorsRejectBadValues)
{
    const KvFile kv = KvFile::parseText(
        "d = not_a_number\nu = -3\nb = maybe\nok = 7\n");
    EXPECT_THROW(kv.getDouble("d", 0.0), KvError);
    EXPECT_THROW(kv.getUint("u", 0), KvError);
    EXPECT_THROW(kv.getBool("b", false), KvError);
    EXPECT_EQ(kv.getUint("ok", 0), 7u);
    EXPECT_TRUE(KvFile::parseText("x = yes").getBool("x", false));
    EXPECT_FALSE(KvFile::parseText("x = off").getBool("x", true));
}

TEST(KvFile, UnknownKeysAreReportedNotIgnored)
{
    const KvFile kv =
        KvFile::parseText("tiles = 5\nworkloda = int\n");
    (void)kv.getUint("tiles", 0);
    const auto unknown = kv.unconsumedKeys();
    ASSERT_EQ(unknown.size(), 1u);
    EXPECT_EQ(unknown[0], "workloda");
    try {
        kv.checkUnknownKeys("scenario");
        FAIL() << "unknown key accepted";
    } catch (const KvError &e) {
        EXPECT_NE(std::string(e.what()).find("workloda"),
                  std::string::npos);
    }
}

TEST(KvFile, MissingFileThrows)
{
    EXPECT_THROW(KvFile::parseFile("/nonexistent/piton.kv"), KvError);
}

} // namespace
} // namespace piton::config
