/**
 * @file
 * Unit tests for the chip module: variation, yield, area, fmax solver.
 */

#include <gtest/gtest.h>

#include "chip/area_model.hh"
#include "chip/chip_instance.hh"
#include "chip/fmax_solver.hh"
#include "chip/yield_model.hh"

namespace piton::chip
{
namespace
{

TEST(ChipInstance, CalibratedChipsDiffer)
{
    const ChipInstance c1 = makeChip(1);
    const ChipInstance c2 = makeChip(2);
    const ChipInstance c3 = makeChip(3);
    // Chip #1: fast and leaky; Chip #2 nominal; Chip #3 cold and slow.
    EXPECT_GT(c1.speedFactor, c2.speedFactor);
    EXPECT_GT(c1.leakFactor, 1.25);
    EXPECT_DOUBLE_EQ(c2.leakFactor, 1.0);
    EXPECT_LT(c3.leakFactor, 1.0);
    EXPECT_LT(c3.dynFactor, 1.0);
    EXPECT_EQ(c1.tileDynFactor.size(), 25u);
}

TEST(ChipInstance, TileVariationIsSmallAndDeterministic)
{
    const ChipInstance a = makeChip(2, 99);
    const ChipInstance b = makeChip(2, 99);
    EXPECT_EQ(a.tileDynFactor, b.tileDynFactor);
    for (double f : a.tileDynFactor) {
        EXPECT_GT(f, 0.9);
        EXPECT_LT(f, 1.1);
    }
    EXPECT_DOUBLE_EQ(a.tileFactor(30), 1.0); // out of range -> neutral
}

TEST(ChipInstance, UnknownIdIsFatal)
{
    EXPECT_EXIT(makeChip(9), testing::ExitedWithCode(1), "unknown chip id");
}

TEST(YieldModel, ProbabilitiesSumToOne)
{
    const YieldModel m;
    double sum = 0.0;
    for (std::size_t i = 0;
         i < static_cast<std::size_t>(DieStatus::NumStatuses); ++i)
        sum += m.probabilityOf(static_cast<DieStatus>(i));
    EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(YieldModel, ClosedFormMatchesTableIVShape)
{
    const YieldModel m;
    // Table IV: 59.4% good, 21.9% deterministic-unstable, 12.5% VCS
    // short, 3.1% VDD short, 3.1% nondeterministic-unstable.
    EXPECT_NEAR(m.probabilityOf(DieStatus::Good), 0.594, 0.05);
    EXPECT_NEAR(m.probabilityOf(DieStatus::UnstableDeterministic), 0.219,
                0.05);
    EXPECT_NEAR(m.probabilityOf(DieStatus::BadVcsShort), 0.125, 0.02);
    EXPECT_NEAR(m.probabilityOf(DieStatus::BadVddShort), 0.031, 0.01);
    EXPECT_NEAR(m.probabilityOf(DieStatus::UnstableNondeterministic),
                0.031, 0.015);
}

TEST(YieldModel, MonteCarloConvergesToClosedForm)
{
    const YieldModel m;
    const TestingStats s = m.testDies(200000, 7);
    EXPECT_EQ(s.total(), 200000u);
    for (std::size_t i = 0;
         i < static_cast<std::size_t>(DieStatus::NumStatuses); ++i) {
        const auto st = static_cast<DieStatus>(i);
        EXPECT_NEAR(s.percent(st) / 100.0, m.probabilityOf(st), 0.01)
            << dieStatusSymptom(st);
    }
}

TEST(YieldModel, BatchOf32IsDeterministicPerSeed)
{
    const YieldModel m;
    const TestingStats a = m.testDies(32, 42);
    const TestingStats b = m.testDies(32, 42);
    EXPECT_EQ(a.counts, b.counts);
    EXPECT_EQ(a.total(), 32u);
}

TEST(YieldModel, RepairabilityFlags)
{
    EXPECT_TRUE(possiblyRepairable(DieStatus::UnstableDeterministic));
    EXPECT_TRUE(possiblyRepairable(DieStatus::UnstableNondeterministic));
    EXPECT_FALSE(possiblyRepairable(DieStatus::Good));
    EXPECT_FALSE(possiblyRepairable(DieStatus::BadVcsShort));
}

TEST(AreaModel, LevelsMatchFig8Totals)
{
    const AreaModel m;
    EXPECT_DOUBLE_EQ(m.chip().totalMm2, 35.97552);
    EXPECT_DOUBLE_EQ(m.tile().totalMm2, 1.17459);
    EXPECT_DOUBLE_EQ(m.core().totalMm2, 0.55205);
}

TEST(AreaModel, PercentagesSumToRoughly100)
{
    const AreaModel m;
    EXPECT_NEAR(m.chip().percentSum(), 100.0, 0.25);
    EXPECT_NEAR(m.tile().percentSum(), 100.0, 0.25);
    EXPECT_NEAR(m.core().percentSum(), 100.0, 0.25);
}

TEST(AreaModel, KeyBlockValues)
{
    const AreaModel m;
    EXPECT_DOUBLE_EQ(m.tile().blockPercent("Core"), 47.00);
    EXPECT_DOUBLE_EQ(m.tile().blockPercent("L2 Cache"), 22.16);
    EXPECT_DOUBLE_EQ(m.core().blockPercent("Load/Store"), 22.33);
    EXPECT_DOUBLE_EQ(m.chip().blockPercent("Tile 1-24"), 78.37);
    // NoC routers are under 3% of the tile: the area context for the
    // "NoC energy is small" insight.
    EXPECT_LT(m.nocRouterTileFraction(), 0.03);
    EXPECT_GT(m.nocRouterTileFraction(), 0.025);
}

TEST(AreaModel, TileAreaConsistentWithChipLevel)
{
    const AreaModel m;
    // 24 identical tiles occupy 78.37% of the chip; the implied
    // per-tile area should be close to the tile level's floorplan.
    const double per_tile = m.chip().blockAreaMm2("Tile 1-24") / 24.0;
    EXPECT_NEAR(per_tile, m.tile().totalMm2, 0.01);
}

TEST(AreaModel, UnknownBlockIsFatal)
{
    const AreaModel m;
    EXPECT_EXIT(m.tile().blockPercent("Rocket"),
                testing::ExitedWithCode(1), "unknown area block");
}

class FmaxSolverTest : public testing::Test
{
  protected:
    FmaxSolver
    makeSolver() const
    {
        return FmaxSolver(power::VfModel{}, power::EnergyModel{},
                          thermal::ThermalParams{});
    }
};

TEST_F(FmaxSolverTest, NominalChipBootsNear514MhzAt1V)
{
    const FmaxSolver solver = makeSolver();
    const FmaxResult r = solver.solve(makeChip(2), 1.0, 1.05);
    EXPECT_FALSE(r.thermallyLimited);
    EXPECT_NEAR(r.fmaxMhz, 514.33, 3.0);
    EXPECT_GT(r.nextStepMhz, r.fmaxMhz);
}

TEST_F(FmaxSolverTest, FrequencyRisesWithVoltageUntilThermalLimit)
{
    const FmaxSolver solver = makeSolver();
    const ChipInstance chip2 = makeChip(2);
    double prev = 0.0;
    for (double v = 0.8; v <= 1.1001; v += 0.05) {
        const FmaxResult r = solver.solve(chip2, v, v + 0.05);
        EXPECT_GT(r.fmaxMhz, prev) << "at VDD=" << v;
        prev = r.fmaxMhz;
    }
}

TEST_F(FmaxSolverTest, Chip1FastestAtLowVoltageButThermallyLimited)
{
    const FmaxSolver solver = makeSolver();
    const ChipInstance c1 = makeChip(1);
    const ChipInstance c2 = makeChip(2);

    const FmaxResult low1 = solver.solve(c1, 0.8, 0.85);
    const FmaxResult low2 = solver.solve(c2, 0.8, 0.85);
    EXPECT_GT(low1.fmaxMhz, low2.fmaxMhz); // fast corner wins when cool

    const FmaxResult high1 = solver.solve(c1, 1.2, 1.25);
    const FmaxResult high2 = solver.solve(c2, 1.2, 1.25);
    EXPECT_TRUE(high1.thermallyLimited);
    EXPECT_LT(high1.fmaxMhz, high2.fmaxMhz); // leaky chip collapses
    // Severe drop: Chip #1 at 1.2 V is slower than at 1.15 V.
    const FmaxResult mid1 = solver.solve(c1, 1.15, 1.20);
    EXPECT_LT(high1.fmaxMhz, mid1.fmaxMhz);
}

TEST_F(FmaxSolverTest, BootPowerIncludesLeakageFeedback)
{
    const FmaxSolver solver = makeSolver();
    double temp = 0.0;
    const double p =
        solver.bootPowerW(makeChip(2), 500.05, 1.0, 1.05, &temp);
    EXPECT_GT(p, 1.8);
    EXPECT_LT(p, 2.6);
    EXPECT_GT(temp, 35.0); // die runs warm at 2 W behind ~10.5 K/W
    EXPECT_LT(temp, 55.0);
}

} // namespace
} // namespace piton::chip
