# Golden-file bench regression driver (ctest label "golden").
#
# Runs one bench binary with pinned arguments and byte-compares its
# stdout against the checked-in golden file.  The sweeps behind the
# benches are bit-deterministic at any --threads value, so the goldens
# are stable across machines building the same toolchain output.
#
# Refreshing after an intended output change:
#   PITON_UPDATE_GOLDENS=1 ctest -L golden
# then review the tests/golden/*.txt diff like any other code change.
#
# Variables: BENCH (binary), ARGS (space-separated), GOLDEN (source
# golden path), OUT (scratch output path).

separate_arguments(bench_args UNIX_COMMAND "${ARGS}")

execute_process(
    COMMAND ${BENCH} ${bench_args}
    OUTPUT_FILE ${OUT}
    RESULT_VARIABLE run_rc)
if(NOT run_rc EQUAL 0)
    message(FATAL_ERROR "${BENCH} ${ARGS} exited with ${run_rc}")
endif()

if("$ENV{PITON_UPDATE_GOLDENS}")
    configure_file(${OUT} ${GOLDEN} COPYONLY)
    message(STATUS "updated golden: ${GOLDEN}")
    return()
endif()

if(NOT EXISTS ${GOLDEN})
    message(FATAL_ERROR
        "missing golden file ${GOLDEN}; generate it with "
        "PITON_UPDATE_GOLDENS=1 ctest -L golden")
endif()

execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files ${OUT} ${GOLDEN}
    RESULT_VARIABLE diff_rc)
if(NOT diff_rc EQUAL 0)
    execute_process(COMMAND diff -u ${GOLDEN} ${OUT}
                    OUTPUT_VARIABLE diff_text ERROR_QUIET)
    message(FATAL_ERROR
        "bench output differs from ${GOLDEN}\n${diff_text}\n"
        "If the change is intended, refresh with "
        "PITON_UPDATE_GOLDENS=1 ctest -L golden and commit the diff.")
endif()
