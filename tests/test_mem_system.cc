/**
 * @file
 * Tests for the memory hierarchy + coherence transactions, including
 * the Table VII latency scenarios the paper verifies via simulation.
 */

#include <gtest/gtest.h>

#include "arch/mem_system.hh"
#include "arch/memory.hh"
#include "common/rng.hh"
#include "config/piton_params.hh"
#include "power/energy_model.hh"

namespace piton::arch
{
namespace
{

class MemSystemTest : public testing::Test
{
  protected:
    MemSystemTest() : mem_(params_, energy_, ledger_, memory_, 7) {}

    /** Warm one address into the requesting tile's L1D. */
    void
    warm(TileId tile, Addr addr)
    {
        RegVal d;
        mem_.load(tile, addr, d, now_++);
    }

    /** Warm a 64 B line into the home L2 without touching `tile`'s
     *  private caches. */
    void
    warmL2ViaHome(Addr addr)
    {
        const TileId home = mem_.homeTile(addr);
        RegVal d;
        mem_.load(home, addr, d, now_++);
    }

    config::PitonParams params_;
    power::EnergyModel energy_;
    power::EnergyLedger ledger_;
    MainMemory memory_;
    MemorySystem mem_;
    Cycle now_ = 100;
};

TEST_F(MemSystemTest, HomeTileMappingCoversAllTiles)
{
    std::array<int, 25> seen{};
    for (Addr a = 0; a < 25 * 64; a += 64)
        ++seen[mem_.homeTile(a)];
    for (int count : seen)
        EXPECT_EQ(count, 1); // low-order mapping round-robins lines
}

TEST_F(MemSystemTest, SliceMappingModesDiffer)
{
    const Addr a = 0x1234567890ULL & ~0x3FULL;
    mem_.setSliceMapping(config::LineToSliceMapping::LowOrder);
    const TileId low = mem_.homeTile(a);
    mem_.setSliceMapping(config::LineToSliceMapping::MidOrder);
    const TileId mid = mem_.homeTile(a);
    mem_.setSliceMapping(config::LineToSliceMapping::HighOrder);
    const TileId high = mem_.homeTile(a);
    // The three mappings select different address bits; for this
    // address they produce at least two distinct homes.
    EXPECT_TRUE(low != mid || mid != high);
}

TEST_F(MemSystemTest, FirstLoadGoesOffChipThenHitsL1)
{
    RegVal data = 0;
    memory_.write64(0x4000, 77);
    const AccessOutcome miss = mem_.load(0, 0x4000, data, now_++);
    EXPECT_EQ(data, 77u);
    EXPECT_EQ(miss.level, HitLevel::OffChip);
    EXPECT_GE(miss.latency, 395u);     // Fig. 15 nominal
    EXPECT_LE(miss.latency, 470u);     // + jitter + NoC

    const AccessOutcome hit = mem_.load(0, 0x4000, data, now_++);
    EXPECT_EQ(hit.level, HitLevel::L1);
    EXPECT_EQ(hit.latency, 3u);        // Table VI/VII L1 hit
}

TEST_F(MemSystemTest, LocalL2HitLatencyIs34)
{
    // Choose an address homed at tile 0 (low-order mapping: line 0).
    const Addr addr = 0x0;
    ASSERT_EQ(mem_.homeTile(addr), 0u);
    warm(0, addr); // off-chip fill into L2 + private caches

    // Displace the line from the private L1D/L1.5 with aliasing loads.
    // Stride 51200 aliases L1D/L1.5 set 0 (multiple of 2048), keeps
    // tile 0 as home (800*i lines, 800 % 25 == 0), and lands in L2
    // sets 32*i != 0, so the victim line stays resident in the L2.
    for (int i = 1; i <= 6; ++i)
        warm(0, addr + static_cast<Addr>(i) * 51200);

    RegVal data = 0;
    const AccessOutcome out = mem_.load(0, addr, data, now_++);
    EXPECT_EQ(out.level, HitLevel::LocalL2);
    EXPECT_EQ(out.latency, 34u); // Table VII
}

TEST_F(MemSystemTest, RemoteL2HitAddsTwoCyclesPerHop)
{
    // Tile 4 requests a line homed at tile 0: 4 hops, straight line.
    const Addr addr = 0x0;
    ASSERT_EQ(mem_.homeTile(addr), 0u);
    warmL2ViaHome(addr);

    RegVal data = 0;
    const AccessOutcome out = mem_.load(4, addr, data, now_++);
    EXPECT_EQ(out.level, HitLevel::RemoteL2);
    EXPECT_EQ(out.latency, 42u); // 34 + 2 * 4 hops (Table VII)
}

TEST_F(MemSystemTest, RemoteL2HitEightHopsWithTurn)
{
    const Addr addr = 0x0;
    ASSERT_EQ(mem_.homeTile(addr), 0u);
    warmL2ViaHome(addr);

    RegVal data = 0;
    const AccessOutcome out = mem_.load(24, addr, data, now_++);
    EXPECT_EQ(out.level, HitLevel::RemoteL2);
    EXPECT_EQ(out.latency, 52u); // 34 + 2*8 hops + 2 turn cycles
}

TEST_F(MemSystemTest, L15HitAfterL1OnlyEviction)
{
    // A store allocates in the L1.5 but not the L1D, so a subsequent
    // load finds the line at the L1.5 level.
    mem_.store(0, 0x8000, 5, now_++);
    RegVal data = 0;
    const AccessOutcome out = mem_.load(0, 0x8000, data, now_++);
    EXPECT_EQ(out.level, HitLevel::L15);
    EXPECT_EQ(out.latency, mem_.latencies().l15Hit);
    EXPECT_EQ(data, 5u);
}

TEST_F(MemSystemTest, StoreDrainsAtBufferLatencyWhenOwned)
{
    // First store pays the RFO; subsequent stores to the same line hit
    // an M-state L1.5 line and drain in 10 cycles.
    mem_.store(0, 0x9000, 1, now_++);
    const AccessOutcome out = mem_.store(0, 0x9000, 2, now_++);
    EXPECT_EQ(out.latency, 10u);
    EXPECT_EQ(memory_.read64(0x9000), 2u);
}

TEST_F(MemSystemTest, StoreToSharedLineTriggersInvalidations)
{
    const Addr addr = 0xA000;
    warm(1, addr);
    warm(2, addr); // both tiles share the line
    mem_.resetStats();
    mem_.store(1, addr, 9, now_++);
    EXPECT_GE(mem_.stats().invalidationsSent, 1u);
    EXPECT_GE(mem_.stats().upgrades, 1u);

    // Tile 2's copy is gone: its next load misses past the L1.
    RegVal data = 0;
    const AccessOutcome out = mem_.load(2, addr, data, now_++);
    EXPECT_NE(out.level, HitLevel::L1);
    EXPECT_EQ(data, 9u); // and observes the new value
}

TEST_F(MemSystemTest, LoadOfRemoteDirtyLineDowngradesOwner)
{
    const Addr addr = 0xB000;
    mem_.store(3, addr, 42, now_++); // tile 3 owns the line M
    RegVal data = 0;
    const AccessOutcome out = mem_.load(7, addr, data, now_++);
    EXPECT_EQ(data, 42u);
    EXPECT_NE(out.level, HitLevel::L1);
    // A second store by tile 3 must now re-upgrade (S -> M).
    mem_.resetStats();
    mem_.store(3, addr, 43, now_++);
    EXPECT_EQ(mem_.stats().upgrades, 1u);
}

TEST_F(MemSystemTest, CasSemantics)
{
    const Addr addr = 0xC000;
    memory_.write64(addr, 10);
    RegVal old = 0;
    // Successful CAS.
    auto out = mem_.atomicCas(0, addr, 10, 99, old, now_++);
    EXPECT_EQ(old, 10u);
    EXPECT_EQ(memory_.read64(addr), 99u);
    EXPECT_GE(out.latency, 34u);
    // Failed CAS leaves memory untouched.
    out = mem_.atomicCas(0, addr, 10, 55, old, now_++);
    EXPECT_EQ(old, 99u);
    EXPECT_EQ(memory_.read64(addr), 99u);
}

TEST_F(MemSystemTest, CasInvalidatesCachedCopies)
{
    const Addr addr = 0xD000;
    warm(5, addr);
    RegVal old = 0;
    mem_.atomicCas(5, addr, 0, 1, old, now_++);
    RegVal data = 0;
    const AccessOutcome out = mem_.load(5, addr, data, now_++);
    EXPECT_NE(out.level, HitLevel::L1); // the cached copy was killed
}

TEST_F(MemSystemTest, IfetchMissesThenHits)
{
    const Addr pc = 0x10000;
    const std::uint32_t extra = mem_.ifetch(0, pc, now_++);
    EXPECT_GT(extra, 0u);
    EXPECT_EQ(mem_.ifetch(0, pc, now_++), 0u);
    EXPECT_EQ(mem_.ifetch(0, pc + 28, now_++), 0u); // same 32 B line
    EXPECT_GT(mem_.ifetch(0, pc + 32, now_++), 0u); // next line
    EXPECT_EQ(mem_.stats().ifetchMisses, 2u);
}

TEST_F(MemSystemTest, EnergyLedgerSeesOffChipExcursion)
{
    RegVal data = 0;
    mem_.load(0, 0xE000, data, now_++);
    const double off_chip_nj =
        jToNj(ledger_.category(power::Category::OffChip)
                  .onChipCoreAndSram());
    // One L2 miss charges the calibrated ~200 nJ excursion (the
    // remainder of Table VII's 308.7 nJ comes from leakage heating
    // during the 25-core stress measurement).
    EXPECT_NEAR(off_chip_nj, 200.0, 5.0);
}

TEST_F(MemSystemTest, InjectPacketReachesDestination)
{
    mem_.noc().resetStats();
    const std::vector<RegVal> payload(6, 0xAAAAAAAAAAAAAAAAULL);
    const NocSendResult r = mem_.injectPacket(9, payload);
    EXPECT_EQ(r.hops, 5u); // tile 0 -> tile 9, the paper's example
    EXPECT_EQ(mem_.noc().stats().packets, 1u);
    EXPECT_EQ(mem_.noc().stats().flits, 7u); // header + 6 payload
}

TEST_F(MemSystemTest, FlushAllResetsCaches)
{
    warm(0, 0xF000);
    mem_.flushAll();
    RegVal data = 0;
    const AccessOutcome out = mem_.load(0, 0xF000, data, now_++);
    EXPECT_EQ(out.level, HitLevel::OffChip);
}

TEST_F(MemSystemTest, StatsCountersTrackScenarios)
{
    RegVal d;
    mem_.load(0, 0x14000, d, now_++);          // off-chip
    mem_.load(0, 0x14000, d, now_++);          // L1 hit
    mem_.store(0, 0x14100, 1, now_++);         // RFO
    EXPECT_EQ(mem_.stats().loads, 2u);
    EXPECT_EQ(mem_.stats().stores, 1u);
    EXPECT_EQ(mem_.stats().l1Hits, 1u);
    EXPECT_GE(mem_.stats().offChipMisses, 1u);
}

} // namespace
} // namespace piton::arch
