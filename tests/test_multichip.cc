/**
 * @file
 * Tests for the multi-socket extension: socket-interleaved homes,
 * cross-chip latency composition, energy on both sockets' bridges.
 */

#include <gtest/gtest.h>

#include "multichip/multichip.hh"

namespace piton::multichip
{
namespace
{

TEST(MultiChip, SingleSocketBehavesLikeAChip)
{
    MultiChipSystem sys(1);
    EXPECT_EQ(sys.socketCount(), 1u);
    EXPECT_EQ(sys.homeSocket(0x12345), 0u);
    const auto out = sys.crossChipLoad(0, 3, 0x4000, 1);
    EXPECT_EQ(sys.fabricCrossings(), 0u); // never leaves the socket
    EXPECT_GE(out.latency, 395u);         // cold: off-chip DRAM
}

TEST(MultiChip, HomesInterleaveAcrossSockets)
{
    MultiChipSystem sys(4);
    std::array<int, 4> seen{};
    for (Addr a = 0; a < 16 * 64; a += 64)
        ++seen[sys.homeSocket(a)];
    for (const int count : seen)
        EXPECT_EQ(count, 4);
}

TEST(MultiChip, CrossChipLoadCostsMoreThanLocal)
{
    MultiChipSystem sys(2);
    // Address homed on socket 1.
    Addr remote_addr = 0x40;
    ASSERT_EQ(sys.homeSocket(remote_addr), 1u);

    // Warm the line into socket 1's L2 (a local access there).
    sys.localLoad(1, 0, remote_addr, 1);

    const auto cross = sys.crossChipLoad(0, 12, remote_addr, 100);
    EXPECT_EQ(sys.fabricCrossings(), 1u);
    EXPECT_TRUE(cross.remoteL2Hit);
    // Two fabric crossings (~73 cycles each way) plus meshes: the
    // paper's motivation for the on-chip/off-chip locality gap.
    EXPECT_GT(cross.latency, 150u);
    EXPECT_LT(cross.latency, 400u);

    // A warm local access on socket 0 (its own homed line).
    Addr local_addr = 0x0;
    ASSERT_EQ(sys.homeSocket(local_addr), 0u);
    sys.localLoad(0, 12, local_addr, 1);
    const auto local = sys.localLoad(0, 12, local_addr, 200);
    EXPECT_LT(local.latency, cross.latency);
}

TEST(MultiChip, ColdCrossChipLoadPaysSharedDramToo)
{
    MultiChipSystem sys(2);
    const auto cold = sys.crossChipLoad(0, 0, 0x40, 50);
    EXPECT_FALSE(cold.remoteL2Hit);
    EXPECT_GT(cold.latency, 500u); // fabric + remote socket's miss path
}

TEST(MultiChip, CrossingChargesBothSockets)
{
    MultiChipSystem sys(2);
    sys.localLoad(1, 0, 0x40, 1); // warm at home
    const double s0_before =
        sys.socket(0).ledger().total().total();
    const double s1_before =
        sys.socket(1).ledger().total().total();
    const auto out = sys.crossChipLoad(0, 0, 0x40, 100);
    EXPECT_GT(out.energyJ, 0.0);
    EXPECT_GT(sys.socket(0).ledger().total().total(), s0_before);
    EXPECT_GT(sys.socket(1).ledger().total().total(), s1_before);
    // VIO pad energy appears on both sockets' I/O rails.
    EXPECT_GT(sys.socket(0).ledger().total().get(power::Rail::Vio), 0.0);
    EXPECT_GT(sys.socket(1).ledger().total().get(power::Rail::Vio), 0.0);
}

TEST(MultiChip, SocketsRunIndependentWorkloads)
{
    MultiChipSystem sys(2);
    // Socket ledgers are independent: running nothing accumulates
    // nothing on socket 1 while socket 0 sees local traffic.
    sys.localLoad(0, 5, 0x0, 1);
    EXPECT_GT(sys.socket(0).ledger().total().total(), 0.0);
    EXPECT_DOUBLE_EQ(sys.socket(1).ledger().total().total(), 0.0);
}

TEST(MultiChip, RejectsBadConfigs)
{
    EXPECT_THROW(MultiChipSystem(0), std::logic_error);
    EXPECT_THROW(MultiChipSystem(17), std::logic_error);
    MultiChipSystem sys(2);
    EXPECT_THROW(sys.crossChipLoad(5, 0, 0, 0), std::logic_error);
}

} // namespace
} // namespace piton::multichip
