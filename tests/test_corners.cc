/**
 * @file
 * Corner-case coverage: write-back paths, inclusive L2 evictions,
 * off-chip instruction fetch, frequency scaling of idle power, VIO
 * accounting, assembler edge cases, and run-loop boundaries.
 */

#include <gtest/gtest.h>

#include "arch/mem_system.hh"
#include "arch/memory.hh"
#include "isa/assembler.hh"
#include "sim/system.hh"
#include "workloads/microbenchmarks.hh"

namespace piton
{
namespace
{

class CornerMem : public testing::Test
{
  protected:
    CornerMem() : mem_(params_, energy_, ledger_, memory_, 13) {}

    config::PitonParams params_;
    power::EnergyModel energy_;
    power::EnergyLedger ledger_;
    arch::MainMemory memory_;
    arch::MemorySystem mem_;
    Cycle now_ = 0;
};

TEST_F(CornerMem, DirtyL15EvictionWritesBack)
{
    // Make tile 0 own a line Modified, then displace it from the L1.5
    // with same-set loads; the eviction must produce a writeback.
    const Addr victim = 0x0;
    mem_.store(0, victim, 0xDEAD, now_++);
    ASSERT_EQ(mem_.probeL15(0, victim), arch::Mesi::Modified);
    mem_.resetStats();
    for (int i = 1; i <= 6; ++i) {
        RegVal d;
        now_ += mem_.load(0, victim + static_cast<Addr>(i) * 51200, d,
                          now_)
                    .latency;
    }
    EXPECT_EQ(mem_.probeL15(0, victim), arch::Mesi::Invalid);
    EXPECT_GE(mem_.stats().writebacks, 1u);
    EXPECT_EQ(memory_.read64(victim), 0xDEADu);
}

TEST_F(CornerMem, InclusiveL2EvictionInvalidatesSharers)
{
    // Fill one home-L2 set past its 4 ways with lines shared by tile 3;
    // the L2 eviction must strip tile 3's private copies too.
    std::vector<Addr> lines;
    for (int i = 0; i < 6; ++i)
        lines.push_back(static_cast<Addr>(i) * 409600); // same L2 set @0
    for (const Addr a : lines) {
        RegVal d;
        now_ += mem_.load(3, a, d, now_).latency;
    }
    // The first lines were evicted from the (4-way) home set...
    EXPECT_EQ(mem_.probeL2(0, lines[0]), arch::Mesi::Invalid);
    // ... and inclusion removed them from tile 3's L1.5 as well.
    EXPECT_EQ(mem_.probeL15(3, lines[0]), arch::Mesi::Invalid);
    // The most recent line is still everywhere.
    EXPECT_NE(mem_.probeL2(0, lines[5]), arch::Mesi::Invalid);
    EXPECT_NE(mem_.probeL15(3, lines[5]), arch::Mesi::Invalid);
}

TEST_F(CornerMem, IfetchGoesOffChipWhenL2Cold)
{
    const std::uint32_t extra = mem_.ifetch(7, 0x900000, now_++);
    EXPECT_GE(extra, 300u); // the Fig. 15 off-chip path
    EXPECT_EQ(mem_.ifetch(7, 0x900000, now_++), 0u);
}

TEST_F(CornerMem, VioRailOnlySeesOffChipTraffic)
{
    RegVal d;
    mem_.load(0, 0xAB0000, d, now_++); // off-chip miss
    EXPECT_GT(ledger_.total().get(power::Rail::Vio), 0.0);
    const double vio_before = ledger_.total().get(power::Rail::Vio);
    mem_.load(0, 0xAB0000, d, now_++); // L1 hit: no new VIO energy
    EXPECT_DOUBLE_EQ(ledger_.total().get(power::Rail::Vio), vio_before);
}

TEST_F(CornerMem, AtomicsSerializeAtTheHomeLine)
{
    // Warm the line into the home L2 (the first access goes off-chip).
    RegVal old;
    mem_.atomicCas(0, 0x70000, 0, 1, old, 0);
    // Back-to-back atomics to one warm line queue behind each other.
    const auto first = mem_.atomicCas(0, 0x70000, 1, 2, old, 1000);
    const auto second = mem_.atomicCas(1, 0x70000, 2, 3, old, 1000);
    EXPECT_GT(second.latency, first.latency + 10);
    // A fresh (cold) line pays the off-chip trip but no queueing from
    // the contended line.
    const auto other = mem_.atomicCas(2, 0x74000, 0, 1, old, 1000);
    EXPECT_GE(other.latency, 395u);
}

TEST(SystemCorners, IdlePowerScalesWithFrequency)
{
    sim::SystemOptions slow;
    slow.coreClockMhz = 250.0;
    sim::SystemOptions fast;
    fast.coreClockMhz = 500.05;
    const double p_slow = sim::System(slow).idlePowerW();
    const double p_fast = sim::System(fast).idlePowerW();
    // Clock-tree power halves; leakage does not, so the ratio sits
    // between 0.5 and 1.
    EXPECT_LT(p_slow, 0.8 * p_fast);
    EXPECT_GT(p_slow, 0.4 * p_fast);
}

TEST(SystemCorners, MeasurementSeparatesRails)
{
    sim::System sys;
    const auto m = sys.measure(32);
    // VDD dominates; VCS is the small SRAM rail (Fig. 16's split).
    EXPECT_GT(m.vddW.mean(), 4.0 * m.vcsW.mean());
    EXPECT_GT(m.vcsW.mean(), 0.1);
    EXPECT_LT(m.vioW.mean(), 0.2); // idle: only standing VIO
}

TEST(SystemCorners, RunToCompletionOnTimeoutReportsIncomplete)
{
    sim::System sys;
    const isa::Program spin = isa::assemble("loop:\nba loop\n");
    sys.loadProgram(0, 0, &spin);
    const auto r = sys.runToCompletion(10'000);
    EXPECT_FALSE(r.completed);
    EXPECT_GE(r.cycles, 10'000u);
}

TEST(SystemCorners, ZeroProgressRunTerminatesWithoutPhantomEnergy)
{
    // cyclesPerSample = 0 makes every run window advance zero cycles:
    // a never-halting program then makes no forward progress at all.
    // The old loop clamped elapsed to 1 cycle, charging clock-tree and
    // leakage energy for simulated time that never passed — and spun
    // forever.  Now the run must bail out quickly, flagged as stalled,
    // with no energy charged for the zero-progress windows.
    sim::SystemOptions opts;
    opts.cyclesPerSample = 0;
    sim::System sys(opts);
    const isa::Program spin = isa::assemble("loop:\nba loop\n");
    sys.loadProgram(0, 0, &spin);
    const auto r = sys.runToCompletion(1'000'000);
    EXPECT_FALSE(r.completed);
    EXPECT_TRUE(r.stalled);
    EXPECT_EQ(r.cycles, 0u);
    EXPECT_EQ(r.idleEnergyJ, 0.0);
    EXPECT_EQ(r.onChipEnergyJ, 0.0);
}

TEST(SystemCorners, NormalRunIsNotFlaggedStalled)
{
    sim::System sys;
    const isa::Program p = isa::assemble("nop\nhalt\n");
    sys.loadProgram(0, 0, &p);
    const auto r = sys.runToCompletion(100'000'000);
    EXPECT_TRUE(r.completed);
    EXPECT_FALSE(r.stalled);
}

TEST(SystemCorners, CompletedRunStopsAccumulating)
{
    sim::System sys;
    const isa::Program p = isa::assemble("nop\nhalt\n");
    sys.loadProgram(0, 0, &p);
    const auto r = sys.runToCompletion(100'000'000);
    EXPECT_TRUE(r.completed);
    EXPECT_LT(r.cycles, 20'000u); // cold I-fetch + two instructions
}

TEST(AssemblerCorners, ShiftRejectsRegisterAmounts)
{
    EXPECT_THROW(isa::assemble("sll %r1, %r2, %r3\n"), isa::AsmError);
    const isa::Program ok = isa::assemble("sll %r1, 4, %r3\n");
    EXPECT_EQ(ok.at(0).imm, 4);
}

TEST(AssemblerCorners, CasxRejectsDisplacement)
{
    EXPECT_THROW(isa::assemble("casx [%r1 + 8], %r2, %r3\n"),
                 isa::AsmError);
}

TEST(AssemblerCorners, DuplicateLabelIsAsmError)
{
    EXPECT_THROW(isa::assemble("a:\nnop\na:\nhalt\n"), isa::AsmError);
}

TEST(AssemblerCorners, UndefinedLabelIsAsmErrorWithLine)
{
    try {
        isa::assemble("nop\nba nowhere\nhalt\n");
        FAIL() << "expected AsmError";
    } catch (const isa::AsmError &e) {
        EXPECT_EQ(e.line(), 2);
    }
}

TEST(WorkloadCorners, HistHandlesMoreThreadsThanElements)
{
    sim::System sys;
    // 50 threads, 32 elements: most threads get degenerate slices and
    // the run must still complete with a correct total.
    const auto programs = workloads::loadMicrobench(
        sys, workloads::Microbench::Hist, 25, 2, /*iterations=*/1, 32);
    const auto r = sys.runToCompletion(2'000'000'000ULL);
    ASSERT_TRUE(r.completed);
    std::uint64_t total = 0;
    for (std::uint32_t b = 0; b < workloads::kHistBuckets; ++b)
        total += sys.pitonChip().memory().read64(
            workloads::kHistBucketsBase + b * 8);
    // Each element is merged at least once; overlapping degenerate
    // slices may double-count, but nothing may be lost.
    EXPECT_GE(total, 32u);
}

TEST(WorkloadCorners, MicrobenchRejectsBadConfigs)
{
    sim::System sys;
    EXPECT_THROW(workloads::loadMicrobench(
                     sys, workloads::Microbench::Int, 0, 1, 0),
                 std::logic_error);
    EXPECT_THROW(workloads::loadMicrobench(
                     sys, workloads::Microbench::Int, 5, 3, 0),
                 std::logic_error);
}

} // namespace
} // namespace piton
