/**
 * @file
 * Unit tests for the sampling subsystem (DESIGN.md §14): BBV feature
 * normalization, the deterministic k-means clusterer, per-core BBV
 * accumulation, the interval profiler's bookkeeping, and the stitched
 * estimator's exactness/CI properties in the degenerate cases where
 * the right answer is known in closed form.
 */

#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "sampling/cluster.hh"
#include "sampling/profiler.hh"
#include "sampling/sampled_run.hh"
#include "sim/system.hh"
#include "workloads/microbenchmarks.hh"

namespace
{

using namespace piton;

constexpr Cycle kMaxCycles = 400'000'000ULL;

sim::SystemOptions
samplingOptions()
{
    sim::SystemOptions opts;
    opts.bbvBuckets = 64;
    return opts;
}

void
loadPhased(sim::System &sys, const isa::Program &kernel)
{
    for (TileId tile = 0; tile < 25; ++tile)
        for (ThreadId tid = 0; tid < 2; ++tid) {
            const RegVal hwid = tile * 2 + tid;
            sys.loadProgram(tile, tid, &kernel,
                            {{1, workloads::kMixedDataBase + hwid * 4096}});
        }
}

TEST(NormalizeBbv, L1NormalizesAndKeepsZeroVectorsZero)
{
    const std::vector<double> f =
        sampling::normalizeBbv({2, 0, 6, 0});
    ASSERT_EQ(f.size(), 4u);
    EXPECT_DOUBLE_EQ(f[0], 0.25);
    EXPECT_DOUBLE_EQ(f[1], 0.0);
    EXPECT_DOUBLE_EQ(f[2], 0.75);
    EXPECT_DOUBLE_EQ(f[3], 0.0);

    const std::vector<double> z = sampling::normalizeBbv({0, 0, 0});
    for (const double v : z)
        EXPECT_EQ(v, 0.0);
}

TEST(KmeansCluster, SeparatesObviousBlobsAndPicksMembers)
{
    // Two tight blobs far apart; k = 2 must split exactly along them.
    std::vector<std::vector<double>> pts;
    std::vector<double> w;
    for (int i = 0; i < 5; ++i) {
        pts.push_back({0.0 + 0.01 * i, 0.0});
        w.push_back(1.0);
    }
    for (int i = 0; i < 5; ++i) {
        pts.push_back({10.0 + 0.01 * i, 0.0});
        w.push_back(2.0);
    }
    sampling::ClusterOptions copts;
    copts.maxClusters = 2;
    const sampling::ClusterResult r =
        sampling::kmeansCluster(pts, w, copts);
    ASSERT_EQ(r.clusters, 2u);
    // Same blob -> same cluster; different blobs -> different clusters.
    for (std::size_t i = 1; i < 5; ++i)
        EXPECT_EQ(r.assignment[i], r.assignment[0]);
    for (std::size_t i = 6; i < 10; ++i)
        EXPECT_EQ(r.assignment[i], r.assignment[5]);
    EXPECT_NE(r.assignment[0], r.assignment[5]);
    // Representatives belong to their own clusters, weights add up.
    for (std::uint32_t c = 0; c < r.clusters; ++c)
        EXPECT_EQ(r.assignment[r.representative[c]], c);
    EXPECT_NEAR(r.weight[0] + r.weight[1], 1.0, 1e-12);
    EXPECT_DOUBLE_EQ(r.weightSum[r.assignment[0]], 5.0);
    EXPECT_DOUBLE_EQ(r.weightSum[r.assignment[5]], 10.0);
}

TEST(KmeansCluster, IsDeterministicAndClampsK)
{
    std::vector<std::vector<double>> pts;
    std::vector<double> w;
    for (int i = 0; i < 7; ++i) {
        pts.push_back({static_cast<double>(i % 3),
                       static_cast<double>((i * 5) % 4)});
        w.push_back(1.0 + i);
    }
    sampling::ClusterOptions copts;
    copts.maxClusters = 16; // > point count: k must clamp to 7
    const sampling::ClusterResult a =
        sampling::kmeansCluster(pts, w, copts);
    const sampling::ClusterResult b =
        sampling::kmeansCluster(pts, w, copts);
    EXPECT_EQ(a.clusters, 7u);
    EXPECT_EQ(a.assignment, b.assignment);
    EXPECT_EQ(a.representative, b.representative);
    EXPECT_EQ(a.weightSum, b.weightSum);
    // With k == n every point ends up alone with itself as rep.
    for (std::uint32_t c = 0; c < a.clusters; ++c)
        EXPECT_EQ(a.assignment[a.representative[c]], c);
}

TEST(CoreBbv, EveryRetiredInstructionLandsInExactlyOneBucket)
{
    sim::System sys(samplingOptions());
    const isa::Program kernel = workloads::makePhasedEnergyProgram(2);
    loadPhased(sys, kernel);
    const sim::CompletionResult res = sys.runToCompletion(kMaxCycles);
    ASSERT_TRUE(res.completed);
    std::uint64_t bumped = 0;
    for (TileId t = 0; t < 25; ++t)
        for (const std::uint64_t v : sys.pitonChip().coreBbv(t))
            bumped += v;
    EXPECT_EQ(bumped, sys.pitonChip().totalInsts());
}

TEST(CoreBbv, DisabledByDefaultAndNeverPerturbsResults)
{
    const isa::Program kernel = workloads::makePhasedEnergyProgram(2);
    sim::SystemOptions plain; // bbvBuckets = 0
    sim::System a(plain);
    loadPhased(a, kernel);
    const sim::CompletionResult ra = a.runToCompletion(kMaxCycles);
    EXPECT_EQ(a.pitonChip().bbvBuckets(), 0u);

    sim::System b(samplingOptions());
    loadPhased(b, kernel);
    const sim::CompletionResult rb = b.runToCompletion(kMaxCycles);

    ASSERT_TRUE(ra.completed);
    ASSERT_TRUE(rb.completed);
    EXPECT_EQ(ra.cycles, rb.cycles);
    EXPECT_EQ(ra.insts, rb.insts);
    std::uint64_t ea = 0, eb = 0;
    std::memcpy(&ea, &ra.onChipEnergyJ, sizeof(ea));
    std::memcpy(&eb, &rb.onChipEnergyJ, sizeof(eb));
    EXPECT_EQ(ea, eb);
}

TEST(IntervalProfiler, IntervalsTileTheRunExactly)
{
    sim::System sys(samplingOptions());
    const isa::Program kernel = workloads::makePhasedEnergyProgram(4);
    loadPhased(sys, kernel);
    sampling::ProfilerOptions popts;
    popts.intervalInsns = 150'000;
    sampling::IntervalProfiler prof(sys, popts);
    const sim::CompletionResult res = prof.run(kMaxCycles);
    ASSERT_TRUE(res.completed);

    const auto &iv = prof.intervals();
    ASSERT_GE(iv.size(), 3u);
    // Contiguous, exhaustive tiling of the instruction/cycle stream.
    EXPECT_EQ(iv.front().startInsns, 0u);
    for (std::size_t i = 1; i < iv.size(); ++i) {
        EXPECT_EQ(iv[i].startInsns,
                  iv[i - 1].startInsns + iv[i - 1].insns);
        EXPECT_EQ(iv[i].startCycle,
                  iv[i - 1].startCycle + iv[i - 1].cycles);
    }
    EXPECT_EQ(prof.totalInsns(), res.insts);
    // Full intervals meet the size floor; only the tail is partial.
    for (std::size_t i = 0; i + 1 < iv.size(); ++i) {
        EXPECT_FALSE(iv[i].partial);
        EXPECT_GE(iv[i].insns, popts.intervalInsns);
        EXPECT_FALSE(iv[i].image.empty());
    }
    EXPECT_TRUE(iv.back().partial);
    // Energy/time tile the run too (FP association differs, so near).
    EXPECT_NEAR(prof.totalEnergyJ(), res.onChipEnergyJ,
                1e-12 * res.onChipEnergyJ);
    EXPECT_NEAR(prof.totalSeconds(), res.seconds, 1e-12 * res.seconds);
}

TEST(SampledRun, StitchAppliesTheRatioEstimatorOverReplayedSlices)
{
    sim::SystemOptions opts = samplingOptions();
    sim::System sys(opts);
    const isa::Program kernel = workloads::makePhasedEnergyProgram(3);
    loadPhased(sys, kernel);
    sampling::ProfilerOptions popts;
    popts.intervalInsns = 200'000;
    sampling::IntervalProfiler prof(sys, popts);
    ASSERT_TRUE(prof.run(kMaxCycles).completed);

    sampling::SampledOptions sopts;
    sopts.maxSlices = 4;
    const sampling::SampledEstimate est =
        sampling::runSampled(prof.intervals(), opts, sopts);

    EXPECT_EQ(est.totalInsns, prof.totalInsns());
    ASSERT_FALSE(est.slices.empty());
    // Each replayed slice bitwise-reproduces its profiled interval
    // (the determinism contract the estimator stands on) ...
    double expected = est.exactJ;
    for (const auto &s : est.slices) {
        const sampling::IntervalRecord &rec = prof.intervals()[s.interval];
        EXPECT_EQ(s.insns, rec.insns);
        EXPECT_EQ(s.cycles, rec.cycles);
        std::uint64_t replay_bits = 0, profile_bits = 0;
        std::memcpy(&replay_bits, &s.energyJ, sizeof(replay_bits));
        const double profile_j = rec.energyJ();
        std::memcpy(&profile_bits, &profile_j, sizeof(profile_bits));
        EXPECT_EQ(replay_bits, profile_bits);
        expected +=
            s.clusterInsns * (s.energyJ / static_cast<double>(s.insns));
    }
    // ... and the stitched energy is exactly the ratio-estimator sum.
    EXPECT_DOUBLE_EQ(est.energyJ, expected);
    EXPECT_GT(est.simulatedFrac, 0.0);
    EXPECT_LT(est.simulatedFrac, 1.0);
    // The estimate should land well inside a couple of CI widths of
    // the exact profile energy on this benign workload.
    EXPECT_NEAR(est.energyJ, prof.totalEnergyJ(),
                2.0 * est.energyCi95J + 0.02 * prof.totalEnergyJ());
}

TEST(SampledRun, EmptyAndTailOnlyProfilesFallBackToExactTerms)
{
    // No intervals at all.
    const sampling::SampledEstimate none =
        sampling::runSampled({}, samplingOptions(), {});
    EXPECT_EQ(none.totalInsns, 0u);
    EXPECT_EQ(none.energyJ, 0.0);
    EXPECT_TRUE(none.slices.empty());

    // A single partial (tail) interval: exact term, nothing replayed.
    sampling::IntervalRecord tail;
    tail.insns = 1000;
    tail.activeJ = 2.0e-3;
    tail.idleJ = 1.0e-3;
    tail.seconds = 0.5;
    tail.partial = true;
    const sampling::SampledEstimate est = sampling::runSampled(
        {tail}, samplingOptions(), {});
    EXPECT_EQ(est.clusteredIntervals, 0u);
    EXPECT_TRUE(est.slices.empty());
    EXPECT_DOUBLE_EQ(est.energyJ, 3.0e-3);
    EXPECT_DOUBLE_EQ(est.exactJ, 3.0e-3);
    EXPECT_DOUBLE_EQ(est.seconds, 0.5);
    EXPECT_EQ(est.totalInsns, 1000u);
    EXPECT_EQ(est.simulatedInsns, 0u);
}

TEST(SampledRun, ClusterableIntervalsFilterTailAndIdle)
{
    std::vector<sampling::IntervalRecord> recs(4);
    recs[0].insns = 10;
    recs[1].insns = 0; // idle: excluded
    recs[2].insns = 20;
    recs[3].insns = 5;
    recs[3].partial = true; // tail: excluded
    const std::vector<std::size_t> idx =
        sampling::clusterableIntervals(recs);
    ASSERT_EQ(idx.size(), 2u);
    EXPECT_EQ(idx[0], 0u);
    EXPECT_EQ(idx[1], 2u);
}

} // namespace
