/**
 * @file
 * Bit-equivalence suite for sampled simulation (DESIGN.md §14).
 *
 * The sampling pipeline's promise is that everything it derives —
 * interval records, BBV features, slice selection, replayed slice
 * energies, and the stitched estimate — is *bit-identical* under the
 * fast and legacy engines, at any --engine-threads, at any replay
 * thread count, and across a checkpoint save/resume of the profiling
 * run itself.  These tests profile the same phased workload under
 * every such configuration and compare the results field by field
 * (doubles as raw bits; no tolerances, by design).
 */

#include <cstdint>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "sampling/cluster.hh"
#include "sampling/profiler.hh"
#include "sampling/sampled_run.hh"
#include "sim/system.hh"
#include "workloads/microbenchmarks.hh"

namespace
{

using namespace piton;

constexpr Cycle kMaxCycles = 400'000'000ULL;
constexpr std::uint64_t kReps = 3;
constexpr std::uint64_t kIntervalInsns = 150'000;

std::uint64_t
bitsOf(double d)
{
    std::uint64_t u = 0;
    std::memcpy(&u, &d, sizeof(u));
    return u;
}

sim::SystemOptions
samplingOptions(bool fast_path, unsigned engine_threads)
{
    sim::SystemOptions opts;
    opts.bbvBuckets = 64;
    opts.fastPath = fast_path;
    opts.engineThreads = engine_threads;
    return opts;
}

void
loadPhased(sim::System &sys, const isa::Program &kernel)
{
    for (TileId tile = 0; tile < 25; ++tile)
        for (ThreadId tid = 0; tid < 2; ++tid) {
            const RegVal hwid = tile * 2 + tid;
            sys.loadProgram(tile, tid, &kernel,
                            {{1, workloads::kMixedDataBase + hwid * 4096}});
        }
}

/** A profile reduced to comparable bits (images excluded: they embed
 *  engine-configuration fingerprints by design). */
struct ProfileFingerprint
{
    std::vector<std::uint64_t> words;

    bool operator==(const ProfileFingerprint &o) const
    {
        return words == o.words;
    }
};

ProfileFingerprint
fingerprint(const std::vector<sampling::IntervalRecord> &intervals)
{
    ProfileFingerprint f;
    for (const auto &rec : intervals) {
        f.words.push_back(rec.startInsns);
        f.words.push_back(rec.startCycle);
        f.words.push_back(rec.insns);
        f.words.push_back(rec.cycles);
        f.words.push_back(bitsOf(rec.seconds));
        f.words.push_back(bitsOf(rec.activeJ));
        f.words.push_back(bitsOf(rec.idleJ));
        f.words.push_back(rec.windows);
        f.words.push_back(rec.partial ? 1 : 0);
        for (const std::uint64_t v : rec.bbv)
            f.words.push_back(v);
    }
    return f;
}

std::vector<sampling::IntervalRecord>
profileUnder(const sim::SystemOptions &opts, const isa::Program &kernel,
             bool capture_images = true)
{
    sim::System sys(opts);
    loadPhased(sys, kernel);
    sampling::ProfilerOptions popts;
    popts.intervalInsns = kIntervalInsns;
    popts.captureImages = capture_images;
    sampling::IntervalProfiler prof(sys, popts);
    const sim::CompletionResult res = prof.run(kMaxCycles);
    EXPECT_TRUE(res.completed);
    return prof.intervals();
}

TEST(SamplingEquiv, ProfileAndSliceSelectionAreEngineInvariant)
{
    const isa::Program kernel =
        workloads::makePhasedEnergyProgram(kReps);
    // Images differ across configurations (they record the engine
    // fingerprint), so compare image-free profiles.
    const auto legacy = profileUnder(samplingOptions(false, 1), kernel,
                                     /*capture_images=*/false);
    const ProfileFingerprint ref = fingerprint(legacy);
    ASSERT_GE(legacy.size(), 3u);

    for (const unsigned threads : {1u, 2u, 8u}) {
        const auto fast = profileUnder(samplingOptions(true, threads),
                                       kernel, /*capture_images=*/false);
        EXPECT_EQ(fingerprint(fast), ref)
            << "profile diverged at engineThreads=" << threads;
        const sampling::ClusterResult a =
            sampling::selectSlices(legacy, {});
        const sampling::ClusterResult b =
            sampling::selectSlices(fast, {});
        EXPECT_EQ(a.assignment, b.assignment);
        EXPECT_EQ(a.representative, b.representative);
        EXPECT_EQ(a.weightSum, b.weightSum);
    }
}

TEST(SamplingEquiv, StitchedEstimateIsReplayThreadInvariant)
{
    const isa::Program kernel =
        workloads::makePhasedEnergyProgram(kReps);
    const sim::SystemOptions opts = samplingOptions(true, 1);
    const auto intervals = profileUnder(opts, kernel);

    sampling::SampledOptions s1;
    s1.threads = 1;
    sampling::SampledOptions s4;
    s4.threads = 4;
    const sampling::SampledEstimate a =
        sampling::runSampled(intervals, opts, s1);
    const sampling::SampledEstimate b =
        sampling::runSampled(intervals, opts, s4);

    EXPECT_EQ(bitsOf(a.energyJ), bitsOf(b.energyJ));
    EXPECT_EQ(bitsOf(a.energyCi95J), bitsOf(b.energyCi95J));
    EXPECT_EQ(bitsOf(a.seconds), bitsOf(b.seconds));
    EXPECT_EQ(bitsOf(a.epi), bitsOf(b.epi));
    EXPECT_EQ(a.simulatedInsns, b.simulatedInsns);
    ASSERT_EQ(a.slices.size(), b.slices.size());
    for (std::size_t i = 0; i < a.slices.size(); ++i) {
        EXPECT_EQ(a.slices[i].interval, b.slices[i].interval);
        EXPECT_EQ(bitsOf(a.slices[i].energyJ),
                  bitsOf(b.slices[i].energyJ));
    }
}

TEST(SamplingEquiv, SliceReplaysBitwiseReproduceProfiledIntervals)
{
    const isa::Program kernel =
        workloads::makePhasedEnergyProgram(kReps);
    const sim::SystemOptions opts = samplingOptions(true, 2);
    sim::System sys(opts);
    loadPhased(sys, kernel);
    sampling::ProfilerOptions popts;
    popts.intervalInsns = kIntervalInsns;
    sampling::IntervalProfiler prof(sys, popts);
    ASSERT_TRUE(prof.run(kMaxCycles).completed);

    const sampling::SampledEstimate est =
        sampling::runSampled(prof.intervals(), opts, {});
    ASSERT_FALSE(est.slices.empty());
    for (const auto &s : est.slices) {
        const sampling::IntervalRecord &rec = prof.intervals()[s.interval];
        EXPECT_EQ(s.insns, rec.insns);
        EXPECT_EQ(s.cycles, rec.cycles);
        EXPECT_EQ(bitsOf(s.energyJ), bitsOf(rec.energyJ()))
            << "slice " << s.interval
            << " replay energy diverged from the profile";
    }
}

TEST(SamplingEquiv, CheckpointedProfileResumesBitIdentically)
{
    const isa::Program kernel =
        workloads::makePhasedEnergyProgram(kReps);
    const sim::SystemOptions opts = samplingOptions(true, 1);
    sampling::ProfilerOptions popts;
    popts.intervalInsns = kIntervalInsns;

    // Uninterrupted reference profile.
    std::vector<sampling::IntervalRecord> ref;
    {
        sim::System sys(opts);
        loadPhased(sys, kernel);
        sampling::IntervalProfiler prof(sys, popts);
        ASSERT_TRUE(prof.run(kMaxCycles).completed);
        ref = prof.intervals();
    }
    ASSERT_GE(ref.size(), 3u);

    // Interrupted profile: run a bounded prefix, checkpoint with the
    // profiler attached (its state lands in sys.sampling), restore
    // into a fresh System + profiler, run to completion.
    std::vector<std::uint8_t> image;
    {
        sim::System sys(opts);
        loadPhased(sys, kernel);
        sampling::IntervalProfiler prof(sys, popts);
        // Stop one window into the second interval.  The bound must be
        // window-aligned: runToCompletion clamps its final window to
        // the remaining budget, and a misaligned stop would shift every
        // window boundary after the resume.
        const sim::CompletionResult r =
            prof.run(ref[1].startCycle + opts.cyclesPerSample);
        ASSERT_FALSE(r.completed); // stopped mid-run, mid-interval
        image = sys.saveBytes();
    }
    {
        sim::System sys(opts);
        sampling::IntervalProfiler prof(sys, popts);
        sys.restoreBytes(image);
        ASSERT_TRUE(prof.run(kMaxCycles).completed);
        EXPECT_EQ(fingerprint(prof.intervals()), fingerprint(ref));
        // The resumed profile's slice selection matches too.
        const sampling::ClusterResult a = sampling::selectSlices(ref, {});
        const sampling::ClusterResult b =
            sampling::selectSlices(prof.intervals(), {});
        EXPECT_EQ(a.assignment, b.assignment);
        EXPECT_EQ(a.representative, b.representative);
    }
}

TEST(SamplingEquiv, RestoringAPlainImageRebaselinesTheProfiler)
{
    const isa::Program kernel =
        workloads::makePhasedEnergyProgram(kReps);
    const sim::SystemOptions opts = samplingOptions(true, 1);

    constexpr Cycle kPrefixCycles = 20'000;

    // Save an image with NO profiler attached...
    std::vector<std::uint8_t> image;
    Cycle saved_at = 0;
    {
        sim::System sys(opts);
        loadPhased(sys, kernel);
        sys.runToCompletion(kPrefixCycles);
        saved_at = sys.pitonChip().now();
        image = sys.saveBytes();
    }
    // ... and restore it into a profiled system: the profiler must
    // restart cleanly from the restored counters (no stale records).
    sampling::ProfilerOptions popts;
    popts.intervalInsns = kIntervalInsns;
    sim::System sys(opts);
    sampling::IntervalProfiler prof(sys, popts);
    sys.restoreBytes(image);
    EXPECT_TRUE(prof.intervals().empty());
    ASSERT_TRUE(prof.run(kMaxCycles).completed);
    ASSERT_FALSE(prof.intervals().empty());
    EXPECT_EQ(prof.intervals().front().startCycle, saved_at);
}

} // namespace
