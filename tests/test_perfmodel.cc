/**
 * @file
 * Tests for the analytic machine/SPEC model (Tables VIII and IX).
 */

#include <gtest/gtest.h>

#include "common/stats.hh"
#include "core/app_experiments.hh"
#include "perfmodel/machine.hh"
#include "perfmodel/spec_model.hh"
#include "workloads/spec_profiles.hh"

namespace piton::perfmodel
{
namespace
{

TEST(Machine, TableVIIIParameters)
{
    const MachineParams t1 = sunFireT2000();
    const MachineParams piton = pitonSystem();
    EXPECT_DOUBLE_EQ(t1.processorFreqMhz, 1000.0);
    EXPECT_DOUBLE_EQ(piton.processorFreqMhz, 500.05);
    EXPECT_DOUBLE_EQ(t1.memoryLatencyNs, 108.0);
    EXPECT_DOUBLE_EQ(piton.memoryLatencyNs, 848.0);
    EXPECT_EQ(t1.memoryDataBits, 64u);
    EXPECT_EQ(piton.memoryDataBits, 32u);
    EXPECT_EQ(t1.threadsPerCore, 4u);
    EXPECT_EQ(piton.threadsPerCore, 2u);
    EXPECT_DOUBLE_EQ(t1.l2SizeMb, 3.0);
    EXPECT_DOUBLE_EQ(piton.l2SizeMb, 1.6);
    // The 8x memory-latency discrepancy the paper highlights.
    EXPECT_NEAR(piton.memoryLatencyNs / t1.memoryLatencyNs, 7.85, 0.1);
}

TEST(Machine, CycleConversions)
{
    const MachineParams piton = pitonSystem();
    // 848 ns at 500.05 MHz = ~424 core cycles (Fig. 15 / Table VII).
    EXPECT_NEAR(piton.memLatencyCycles(), 424.0, 1.0);
    const MachineParams t1 = sunFireT2000();
    EXPECT_NEAR(t1.memLatencyCycles(), 108.0, 0.1);
}

class SpecModelTest : public testing::Test
{
  protected:
    SpecModel model_ = core::makePaperSpecModel();
};

TEST_F(SpecModelTest, SlowdownsTrackTableIX)
{
    // Paper values (Table IX).
    const std::vector<std::pair<std::string, double>> expected = {
        {"bzip2-chicken", 4.89}, {"bzip2-source", 5.46},
        {"gcc-166", 6.70},       {"gcc-200", 7.67},
        {"gobmk-13x13", 4.65},   {"h264ref-foreman-baseline", 3.12},
        {"hmmer-nph3", 3.41},    {"libquantum", 5.83},
        {"omnetpp", 9.97},       {"perlbench-checkspam", 8.00},
        {"perlbench-diffmail", 7.97}, {"sjeng", 4.66},
        {"xalancbmk", 7.09},
    };
    for (const auto &[name, slowdown] : expected) {
        const SpecResult r =
            model_.evaluate(workloads::specProfile(name));
        EXPECT_NEAR(r.slowdown, slowdown, slowdown * 0.12) << name;
    }
}

TEST_F(SpecModelTest, SlowdownOrderingPreserved)
{
    // omnetpp is the worst case; h264ref the best (Table IX).
    const auto omnetpp =
        model_.evaluate(workloads::specProfile("omnetpp"));
    const auto h264 = model_.evaluate(
        workloads::specProfile("h264ref-foreman-baseline"));
    for (const auto &r : model_.evaluateAll()) {
        EXPECT_LE(r.slowdown, omnetpp.slowdown + 1e-9) << r.name;
        EXPECT_GE(r.slowdown, h264.slowdown - 1e-9) << r.name;
    }
}

TEST_F(SpecModelTest, PowerInPaperBand)
{
    // Table IX: Piton average power 2.08 .. 2.40 W.
    for (const auto &r : model_.evaluateAll()) {
        EXPECT_GT(r.pitonAvgPowerW, 2.0) << r.name;
        EXPECT_LT(r.pitonAvgPowerW, 2.55) << r.name;
    }
}

TEST_F(SpecModelTest, HighIoBenchmarksDrawTheMostPower)
{
    // hmmer and libquantum are the exceptions with high I/O activity.
    const auto all = model_.evaluateAll();
    double hmmer_w = 0.0, max_quiet_w = 0.0;
    for (const auto &r : all) {
        if (r.name == "hmmer-nph3")
            hmmer_w = r.pitonAvgPowerW;
        else if (r.name != "libquantum")
            max_quiet_w = std::max(max_quiet_w, r.pitonAvgPowerW);
    }
    EXPECT_GT(hmmer_w, max_quiet_w);
}

TEST_F(SpecModelTest, EnergyCorrelatesWithExecutionTime)
{
    // "Energy results correlate closely with execution times, as the
    // average power is similar across applications."
    const auto all = model_.evaluateAll();
    for (const auto &r : all) {
        const double implied_kj =
            r.pitonAvgPowerW * r.pitonMinutes * 60.0 / 1000.0;
        EXPECT_NEAR(r.pitonEnergyKj, implied_kj, 1e-9) << r.name;
    }
    // libquantum is the energy heavyweight (161 kJ in the paper).
    const auto lq = model_.evaluate(workloads::specProfile("libquantum"));
    EXPECT_GT(lq.pitonEnergyKj, 100.0);
    EXPECT_LT(lq.pitonEnergyKj, 250.0);
}

TEST_F(SpecModelTest, ExecutionTimesNearTableIX)
{
    // Spot checks against Table IX's Piton minutes (+/-15%).
    const std::vector<std::pair<std::string, double>> expected = {
        {"gcc-166", 38.28},
        {"libquantum", 1175.70},
        {"omnetpp", 727.04},
        {"sjeng", 569.22},
    };
    for (const auto &[name, minutes] : expected) {
        const SpecResult r =
            model_.evaluate(workloads::specProfile(name));
        EXPECT_NEAR(r.pitonMinutes, minutes, minutes * 0.15) << name;
    }
}

TEST_F(SpecModelTest, ActivityScalesRailPowers)
{
    const auto &gcc = workloads::specProfile("gcc-166");
    const auto low = model_.pitonRailPowers(gcc, 0.7);
    const auto high = model_.pitonRailPowers(gcc, 1.3);
    EXPECT_GT(high[0], low[0]);
    EXPECT_GT(high[2], low[2]);
    // Fig. 16 scale: VDD ~1.77 W, VCS ~0.27 W.
    const auto nominal = model_.pitonRailPowers(gcc, 1.0);
    EXPECT_NEAR(nominal[0], 1.78, 0.12);
    EXPECT_NEAR(nominal[1], 0.29, 0.05);
}

TEST(TimeSeries, Fig16TraceHasPhasesAndNoise)
{
    core::PowerTimeSeriesExperiment exp(42);
    const auto trace =
        exp.run(workloads::specProfile("gcc-166"), 2.0, 600.0);
    ASSERT_EQ(trace.size(), 300u);
    RunningStats core_mw, io_mw;
    for (const auto &pt : trace) {
        core_mw.add(pt.coreMw);
        io_mw.add(pt.ioMw);
    }
    // Core power near 1.78 W with visible phase structure.
    EXPECT_NEAR(core_mw.mean(), 1780.0, 120.0);
    EXPECT_GT(core_mw.stddev(), 1.0);
    // I/O rail fluctuates with bursts.
    EXPECT_GT(io_mw.max(), io_mw.min() + 5.0);
}

} // namespace
} // namespace piton::perfmodel
