/**
 * @file
 * Fleet suite (src/fleet/): consistent-hash ring construction and the
 * rebalance property (join/leave moves only the keys adjacent to the
 * changed worker), key→worker stability, and the coordinator end to
 * end over in-process piton-served workers — byte-identical responses
 * vs a single-node LocalClient reference across 1/2/4 workers, and
 * failover re-routing when the owning worker dies mid-fleet.
 */

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/hash.hh"
#include "fleet/coordinator.hh"
#include "fleet/load.hh"
#include "fleet/ring.hh"
#include "service/client.hh"
#include "service/scheduler.hh"
#include "service/server.hh"

namespace
{

using namespace piton;
using namespace piton::fleet;

Hash128
keyOf(std::uint64_t i)
{
    Hasher h;
    h.update("fleet-ring-test").updateU64(i);
    return h.digest();
}

/** Owner of every probe key, for before/after membership diffs. */
std::map<std::uint64_t, std::string>
ownerMap(const HashRing &ring, std::uint64_t keys)
{
    std::map<std::uint64_t, std::string> owners;
    for (std::uint64_t i = 0; i < keys; ++i)
        owners[i] = ring.ownerOf(keyOf(i));
    return owners;
}

// ---- hash ring ------------------------------------------------------

TEST(FleetRing, EmptyRingThrowsAndMembershipIsIdempotent)
{
    HashRing ring;
    EXPECT_THROW(ring.ownerOf(keyOf(1)), std::runtime_error);
    EXPECT_THROW(ring.addWorker(""), std::exception);

    ring.addWorker("a");
    ring.addWorker("a"); // no-op
    EXPECT_EQ(ring.workerCount(), 1u);
    EXPECT_TRUE(ring.hasWorker("a"));
    ring.removeWorker("ghost"); // no-op
    EXPECT_EQ(ring.workerCount(), 1u);
    EXPECT_EQ(ring.ownerOf(keyOf(1)), "a"); // sole member owns all

    ring.removeWorker("a");
    EXPECT_EQ(ring.workerCount(), 0u);
    EXPECT_THROW(ring.ownerOf(keyOf(1)), std::runtime_error);
}

TEST(FleetRing, OwnersAreDeterministicAcrossInstances)
{
    HashRing a, b;
    // Insertion order must not matter: two coordinators that discover
    // the same member set in different orders must agree on owners.
    for (const char *id : {"w0", "w1", "w2"})
        a.addWorker(id);
    for (const char *id : {"w2", "w0", "w1"})
        b.addWorker(id);
    for (std::uint64_t i = 0; i < 512; ++i) {
        EXPECT_EQ(a.ownerOf(keyOf(i)), b.ownerOf(keyOf(i)));
    }
}

TEST(FleetRing, JoinMovesKeysOnlyToTheNewWorker)
{
    constexpr std::uint64_t kKeys = 2000;
    HashRing ring;
    for (const char *id : {"w0", "w1", "w2"})
        ring.addWorker(id);
    const auto before = ownerMap(ring, kKeys);

    ring.addWorker("w3");
    std::uint64_t moved = 0;
    for (std::uint64_t i = 0; i < kKeys; ++i) {
        const std::string &owner = ring.ownerOf(keyOf(i));
        if (owner != before.at(i)) {
            // The rebalance property: a key either keeps its owner or
            // moves to the joiner — never between incumbents.
            EXPECT_EQ(owner, "w3") << "key " << i;
            ++moved;
        }
    }
    // The joiner took a real share (~1/4), not nothing and not all.
    EXPECT_GT(moved, kKeys / 10);
    EXPECT_LT(moved, kKeys / 2);

    // Leaving again restores every original owner exactly.
    ring.removeWorker("w3");
    EXPECT_EQ(ownerMap(ring, kKeys), before);
}

TEST(FleetRing, LeaveMovesOnlyTheLeaversKeys)
{
    constexpr std::uint64_t kKeys = 2000;
    HashRing ring;
    for (const char *id : {"w0", "w1", "w2", "w3"})
        ring.addWorker(id);
    const auto before = ownerMap(ring, kKeys);

    ring.removeWorker("w1");
    for (std::uint64_t i = 0; i < kKeys; ++i) {
        if (before.at(i) != "w1")
            EXPECT_EQ(ring.ownerOf(keyOf(i)), before.at(i)) << "key " << i;
        else
            EXPECT_NE(ring.ownerOf(keyOf(i)), "w1");
    }
}

TEST(FleetRing, ShareStaysNearUniform)
{
    constexpr std::uint64_t kKeys = 4000;
    HashRing ring;
    for (const char *id : {"w0", "w1", "w2", "w3"})
        ring.addWorker(id);
    std::map<std::string, std::uint64_t> share;
    for (std::uint64_t i = 0; i < kKeys; ++i)
        ++share[ring.ownerOf(keyOf(i))];
    ASSERT_EQ(share.size(), 4u); // everybody owns something
    for (const auto &[id, count] : share) {
        // 64 vnodes keep shares within a loose band of the 25% ideal.
        EXPECT_GT(count, kKeys / 10) << id;
        EXPECT_LT(count, kKeys / 2) << id;
    }
}

TEST(FleetRing, ReplicasAreDistinctAndStartAtOwner)
{
    HashRing ring;
    for (const char *id : {"w0", "w1", "w2"})
        ring.addWorker(id);
    for (std::uint64_t i = 0; i < 64; ++i) {
        const Hash128 key = keyOf(i);
        const std::vector<std::string> reps = ring.replicasFor(key, 3);
        ASSERT_EQ(reps.size(), 3u);
        EXPECT_EQ(reps[0], ring.ownerOf(key));
        EXPECT_EQ(std::set<std::string>(reps.begin(), reps.end()).size(),
                  3u);
    }
    // Asking for more replicas than members returns every member once.
    EXPECT_EQ(ring.replicasFor(keyOf(0), 10).size(), 3u);
}

TEST(FleetRing, SingleWorkerOwnsEverythingIncludingFailoverOrder)
{
    HashRing ring;
    ring.addWorker("solo");
    for (std::uint64_t i = 0; i < 256; ++i) {
        EXPECT_EQ(ring.ownerOf(keyOf(i)), "solo");
        EXPECT_EQ(ring.replicasFor(keyOf(i), 3),
                  std::vector<std::string>{"solo"});
    }
    // Leaving the sole member empties the failover order — callers see
    // an exhausted candidate list, not a phantom owner.
    ring.removeWorker("solo");
    EXPECT_TRUE(ring.replicasFor(keyOf(0), 3).empty());
    EXPECT_THROW(ring.ownerOf(keyOf(0)), std::runtime_error);
}

// ---- coordinator over live workers ----------------------------------

struct Fleet
{
    std::vector<std::unique_ptr<service::ExperimentServer>> servers;
    std::unique_ptr<FleetCoordinator> coord;
};

Fleet
spawnFleet(std::size_t worker_count)
{
    Fleet f;
    FleetConfig cfg;
    for (std::size_t i = 0; i < worker_count; ++i) {
        service::ServerConfig scfg;
        scfg.port = 0;
        scfg.workerId = "test-w" + std::to_string(i);
        scfg.scheduler.threads = 1;
        auto server = std::make_unique<service::ExperimentServer>(scfg);
        server->start();
        cfg.workerPorts.push_back(server->port());
        f.servers.push_back(std::move(server));
    }
    f.coord = std::make_unique<FleetCoordinator>(std::move(cfg));
    return f;
}

/** Single-node reference bodies for the first `points` load points. */
std::vector<std::vector<std::uint8_t>>
referenceBodies(std::size_t points)
{
    service::SchedulerConfig cfg;
    cfg.threads = 1;
    service::ExperimentScheduler sched(cfg);
    service::LocalClient local(sched);
    std::vector<std::vector<std::uint8_t>> bodies;
    for (std::size_t i = 0; i < points; ++i) {
        const service::ClientResult r = local.run(loadPoint(i));
        EXPECT_EQ(r.status, service::Status::Ok) << "point " << i;
        bodies.push_back(r.body);
    }
    return bodies;
}

TEST(FleetCoordinator, ByteIdenticalAcrossWorkerCounts)
{
    constexpr std::size_t kPoints = 8;
    const auto reference = referenceBodies(kPoints);
    for (const std::size_t workers : {1u, 2u, 4u}) {
        Fleet f = spawnFleet(workers);
        for (std::size_t i = 0; i < kPoints; ++i) {
            const service::ClientResult r = f.coord->run(loadPoint(i));
            ASSERT_EQ(r.status, service::Status::Ok)
                << workers << " workers, point " << i;
            EXPECT_EQ(r.body, reference[i])
                << workers << " workers, point " << i;
        }
        const FleetMetrics m = f.coord->metrics();
        EXPECT_EQ(m.requests, kPoints);
        EXPECT_EQ(m.retries, 0u);
        EXPECT_EQ(m.failovers, 0u);
        for (auto &s : f.servers)
            s->stop();
    }
}

TEST(FleetCoordinator, SpreadsLoadAcrossWorkers)
{
    constexpr std::size_t kPoints = 16;
    Fleet f = spawnFleet(2);
    for (std::size_t i = 0; i < kPoints; ++i) {
        EXPECT_EQ(f.coord->run(loadPoint(i)).status, service::Status::Ok);
    }
    std::uint64_t served = 0;
    for (const WorkerSnapshot &w : f.coord->workerSnapshots()) {
        EXPECT_GT(w.requests, 0u) << w.id << " served nothing";
        served += w.requests;
    }
    EXPECT_EQ(served, kPoints);
    // Aggregated worker metrics see every request too.
    EXPECT_GE(f.coord->stats().completed, kPoints);
    for (auto &s : f.servers)
        s->stop();
}

TEST(FleetCoordinator, FailoverReroutesWithIdenticalBytes)
{
    constexpr std::size_t kPoints = 6;
    const auto reference = referenceBodies(kPoints);
    Fleet f = spawnFleet(2);

    // Kill the worker that owns point 0, then run every point: the
    // dead owner's requests must fail over to the survivor with the
    // response bytes unchanged.
    const std::string victim = f.coord->ownerOf(loadPoint(0));
    for (auto &s : f.servers)
        if (s->workerId() == victim)
            s->stop();

    for (std::size_t i = 0; i < kPoints; ++i) {
        const service::ClientResult r = f.coord->run(loadPoint(i));
        ASSERT_EQ(r.status, service::Status::Ok) << "point " << i;
        EXPECT_EQ(r.body, reference[i]) << "point " << i;
    }
    const FleetMetrics m = f.coord->metrics();
    EXPECT_EQ(m.requests, kPoints);
    EXPECT_GT(m.failovers, 0u);
    for (const WorkerSnapshot &w : f.coord->workerSnapshots()) {
        if (w.id == victim) {
            EXPECT_GT(w.failures, 0u);
        }
    }
    for (auto &s : f.servers)
        s->stop();
}

TEST(FleetCoordinator, HealthCheckTracksWorkerDeath)
{
    Fleet f = spawnFleet(2);
    EXPECT_EQ(f.coord->checkHealthOnce(), 2u);
    EXPECT_EQ(f.coord->metrics().workersUp, 2u);

    f.servers[0]->stop();
    EXPECT_EQ(f.coord->checkHealthOnce(), 1u);
    const FleetMetrics m = f.coord->metrics();
    EXPECT_EQ(m.workersUp, 1u);
    EXPECT_EQ(m.workersTotal, 2u);
    for (const WorkerSnapshot &w : f.coord->workerSnapshots()) {
        EXPECT_EQ(w.up, w.id == f.servers[1]->workerId());
    }
    for (auto &s : f.servers)
        s->stop();
}

TEST(FleetCoordinator, DetachedWorkerLeavesTheRing)
{
    Fleet f = spawnFleet(2);
    const std::uint16_t gone = f.servers[0]->port();
    f.coord->detachWorker(gone);
    EXPECT_EQ(f.coord->workerSnapshots().size(), 1u);
    EXPECT_EQ(f.coord->metrics().workersTotal, 1u);
    // Everything routes to the survivor now.
    for (std::size_t i = 0; i < 4; ++i) {
        EXPECT_EQ(f.coord->ownerOf(loadPoint(i)),
                  f.servers[1]->workerId());
    }
    EXPECT_EQ(f.coord->run(loadPoint(0)).status, service::Status::Ok);
    for (auto &s : f.servers)
        s->stop();
}

TEST(FleetCoordinator, AllWorkersDownMidFleetExhaustsReplicas)
{
    Fleet f = spawnFleet(2);
    EXPECT_EQ(f.coord->run(loadPoint(0)).status, service::Status::Ok);
    for (auto &s : f.servers)
        s->stop();
    // Every replica fails → ServiceError after real retry attempts.
    EXPECT_THROW(f.coord->run(loadPoint(1)), service::ServiceError);
    EXPECT_GT(f.coord->metrics().retries, 0u);
    // The stats exchange degrades per worker instead of throwing.
    for (const WorkerDetail &d : f.coord->workerDetails()) {
        EXPECT_FALSE(d.statsOk) << d.snapshot.id;
    }
}

TEST(FleetCoordinator, WorkerDetailsExposeResultCacheCounters)
{
    Fleet f = spawnFleet(2);
    // First visit simulates (a result-cache miss on some worker); the
    // identical revisit must be a result-cache hit on the same worker.
    EXPECT_EQ(f.coord->run(loadPoint(0)).status, service::Status::Ok);
    EXPECT_EQ(f.coord->run(loadPoint(0)).status, service::Status::Ok);
    std::uint64_t hits = 0, misses = 0;
    std::size_t answered = 0;
    for (const WorkerDetail &d : f.coord->workerDetails()) {
        if (!d.statsOk)
            continue;
        ++answered;
        EXPECT_EQ(d.stats.workerId, d.snapshot.id);
        hits += d.stats.metrics.resultCache.hits;
        misses += d.stats.metrics.resultCache.misses;
    }
    EXPECT_EQ(answered, 2u);
    EXPECT_GT(misses, 0u);
    EXPECT_GT(hits, 0u);
    for (auto &s : f.servers)
        s->stop();
}

TEST(FleetCoordinator, RefusesDeadFleetButStartsDegraded)
{
    // Construction succeeds with every worker down (degraded start:
    // membership is the configured ports)…
    FleetConfig cfg;
    cfg.workerPorts = {47, 48}; // reserved low ports: nothing listens
    cfg.connectTimeoutMs = 100;
    FleetCoordinator coord(cfg);
    EXPECT_EQ(coord.metrics().workersUp, 0u);
    EXPECT_EQ(coord.metrics().workersTotal, 2u);
    // …but running a request exhausts every replica and throws.
    EXPECT_THROW(coord.run(loadPoint(0)), service::ServiceError);
}

} // namespace
