/**
 * @file
 * Reference-path equivalence suite for the fast path (DESIGN.md §9).
 *
 * The event-driven chip scheduler (run-ahead rounds + burst issue)
 * promises results *bit-identical* to the legacy per-cycle stepping:
 * same cycle counts, same per-class retirement counts, and — because
 * floating-point addition is not associative — the exact same ledger
 * sums, down to the last mantissa bit.  These tests run every
 * microbenchmark (and targeted stress programs) under both
 * SystemOptions::fastPath settings and compare everything observable,
 * including a byte-for-byte telemetry CSV diff.
 */

#include <array>
#include <cstdint>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "governor/scenario.hh"
#include "isa/assembler.hh"
#include "power/energy_model.hh"
#include "sim/system.hh"
#include "telemetry/export.hh"
#include "telemetry/recorder.hh"
#include "workloads/microbenchmarks.hh"

namespace
{

using namespace piton;

std::uint64_t
bitsOf(double d)
{
    std::uint64_t u = 0;
    std::memcpy(&u, &d, sizeof(u));
    return u;
}

/** Everything observable about a finished run, FP values as raw bits
 *  so EXPECT_EQ is exact (no tolerance, by design). */
struct RunFingerprint
{
    Cycle cycles = 0;
    bool allHalted = false;
    Cycle now = 0;
    std::uint64_t totalInsts = 0;
    std::uint64_t draftedInsts = 0;
    std::array<std::uint64_t,
               static_cast<std::size_t>(isa::InstClass::NumClasses)>
        classCounts{};
    /** Per-category, per-rail ledger sums + grand total, as bits. */
    std::vector<std::uint64_t> ledgerBits;
    /** Per-tile core energies, as bits. */
    std::vector<std::uint64_t> tileBits;

    bool
    operator==(const RunFingerprint &o) const
    {
        return cycles == o.cycles && allHalted == o.allHalted
               && now == o.now && totalInsts == o.totalInsts
               && draftedInsts == o.draftedInsts
               && classCounts == o.classCounts
               && ledgerBits == o.ledgerBits && tileBits == o.tileBits;
    }
};

RunFingerprint
fingerprint(const arch::PitonChip &chip, const arch::PitonChip::RunResult &r)
{
    RunFingerprint f;
    f.cycles = r.cyclesElapsed;
    f.allHalted = r.allHalted;
    f.now = chip.now();
    f.totalInsts = chip.totalInsts();
    f.draftedInsts = chip.draftedInsts();
    f.classCounts = chip.classCounts();
    const auto &ledger = chip.ledger();
    for (std::size_t c = 0; c < power::kNumCategories; ++c)
        for (std::size_t rail = 0; rail < power::kNumRails; ++rail)
            f.ledgerBits.push_back(bitsOf(
                ledger.category(static_cast<power::Category>(c))
                    .get(static_cast<power::Rail>(rail))));
    for (std::size_t rail = 0; rail < power::kNumRails; ++rail)
        f.ledgerBits.push_back(
            bitsOf(ledger.total().get(static_cast<power::Rail>(rail))));
    for (const double e : chip.tileCoreEnergyJ())
        f.tileBits.push_back(bitsOf(e));
    return f;
}

void
expectEqualFingerprints(const RunFingerprint &fast,
                        const RunFingerprint &legacy)
{
    EXPECT_EQ(fast.cycles, legacy.cycles);
    EXPECT_EQ(fast.allHalted, legacy.allHalted);
    EXPECT_EQ(fast.now, legacy.now);
    EXPECT_EQ(fast.totalInsts, legacy.totalInsts);
    EXPECT_EQ(fast.draftedInsts, legacy.draftedInsts);
    EXPECT_EQ(fast.classCounts, legacy.classCounts);
    EXPECT_EQ(fast.ledgerBits, legacy.ledgerBits);
    EXPECT_EQ(fast.tileBits, legacy.tileBits);
    EXPECT_TRUE(fast == legacy);
}

/** Run one microbenchmark on a full 25-core system. */
RunFingerprint
runMicrobench(workloads::Microbench m, bool fast_path, bool drafting,
              Cycle cycles, unsigned engine_threads = 1)
{
    sim::SystemOptions opts;
    opts.fastPath = fast_path;
    opts.engineThreads = engine_threads;
    sim::System sys(opts);
    if (drafting)
        sys.pitonChip().setExecDrafting(true);
    const auto programs = workloads::loadMicrobench(sys, m, 25, 2, 0);
    const auto r = sys.pitonChip().run(cycles);
    return fingerprint(sys.pitonChip(), r);
}

/** (microbench, drafting, engineThreads): every workload/drafting
 *  combination runs the sharded engine at 1, 2, and 8 threads against
 *  the legacy baseline, so thread-count invariance of the charge
 *  replay is asserted bit for bit (DESIGN.md §12). */
using EquivParam = std::tuple<workloads::Microbench, bool, unsigned>;

class FastPathEquivalence : public ::testing::TestWithParam<EquivParam>
{
};

TEST_P(FastPathEquivalence, MicrobenchIsBitIdentical)
{
    const auto [bench, drafting, threads] = GetParam();
    const auto fast = runMicrobench(bench, true, drafting, 30000, threads);
    const auto legacy = runMicrobench(bench, false, drafting, 30000);
    expectEqualFingerprints(fast, legacy);
}

std::string
equivParamName(const ::testing::TestParamInfo<EquivParam> &info)
{
    return std::string(workloads::microbenchName(std::get<0>(info.param)))
           + (std::get<1>(info.param) ? "ExecD" : "") + "T"
           + std::to_string(std::get<2>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    AllMicrobenches, FastPathEquivalence,
    ::testing::Combine(::testing::Values(workloads::Microbench::Int,
                                         workloads::Microbench::HP,
                                         workloads::Microbench::Hist),
                       ::testing::Bool(),
                       ::testing::Values(1u, 2u, 8u)),
    equivParamName);

/** Store-buffer pressure: back-to-back stores overflow the 8-entry
 *  buffer, exercising rollbacks, replayed stores, and the drain
 *  interleaving with the second thread's loads. */
TEST(FastPathEquivalenceStress, StoreBufferPressureIsBitIdentical)
{
    const isa::Program pressure = isa::assemble(R"(
        set 0x20000, %r1
        set 0, %r3
    loop:
        stx %r2, [%r1 + 0]
        stx %r2, [%r1 + 8]
        stx %r2, [%r1 + 64]
        stx %r2, [%r1 + 72]
        add %r2, 1, %r2
        ldx [%r1 + 0], %r4
        add %r3, 1, %r3
        cmp %r3, 400
        bl loop
        halt
    )");
    const isa::Program spin = isa::assemble(R"(
        set 0, %r1
        set 0x30000, %r3
    loop:
        add %r1, 1, %r1
        add %r3, 8, %r3
        ldx [%r3 + 0], %r2
        cmp %r1, 2000
        bl loop
        halt
    )");

    auto run = [&](bool fast_path, unsigned engine_threads) {
        sim::SystemOptions opts;
        opts.fastPath = fast_path;
        opts.engineThreads = engine_threads;
        sim::System sys(opts);
        for (TileId tile = 0; tile < 25; ++tile) {
            sys.loadProgram(tile, 0, &pressure);
            sys.loadProgram(tile, 1, tile % 2 ? &spin : &pressure);
        }
        const auto r = sys.pitonChip().run(200000);
        return fingerprint(sys.pitonChip(), r);
    };
    const auto legacy = run(false, 1);
    for (const unsigned threads : {1u, 2u, 8u}) {
        const auto fast = run(true, threads);
        EXPECT_TRUE(fast.allHalted) << "threads=" << threads;
        expectEqualFingerprints(fast, legacy);
    }
}

/** The telemetry pipeline samples ledger deltas per window; feeding it
 *  from both paths must produce byte-identical CSV exports. */
TEST(FastPathEquivalenceStress, TelemetryCsvIsByteIdentical)
{
    auto csv = [](bool fast_path, unsigned engine_threads = 1) {
        sim::SystemOptions opts;
        opts.fastPath = fast_path;
        opts.engineThreads = engine_threads;
        sim::System sys(opts);
        telemetry::TelemetryRecorder rec;
        sys.attachTelemetry(&rec);
        const auto programs = workloads::loadMicrobench(
            sys, workloads::Microbench::HP, 25, 2, 0);
        for (int window = 0; window < 16; ++window)
            sys.windowTruePowers(2000);
        std::ostringstream os;
        telemetry::writeCsv(os, rec);
        return os.str();
    };
    const std::string fast = csv(true);
    const std::string legacy = csv(false);
    ASSERT_FALSE(fast.empty());
    EXPECT_EQ(fast, legacy);
    // The per-tile series flow through the SoA ledger's sharded sums;
    // an 8-way run must still export the identical bytes.
    EXPECT_EQ(csv(true, 8), legacy);
}

/**
 * Closed-loop governed runs (DESIGN.md §13) carry extra serial state —
 * epoch accumulators, duty-gate tables, controller internals — all of
 * which must stay bit-identical across the legacy path and the sharded
 * engine at any thread count.  Each policy runs the same phased
 * scenario (cap retune + workload swap mid-run, so actuation and gating
 * actually fire) and the whole observable surface is compared: chip
 * fingerprint, scenario aggregates as raw bits, and a byte-for-byte
 * telemetry CSV including the governor.* epoch series.
 */
class GovernedEquivalence
    : public ::testing::TestWithParam<const char *>
{
  protected:
    struct GovernedRun
    {
        RunFingerprint fp;
        std::vector<std::uint64_t> resultBits;
        std::string csv;
    };

    GovernedRun
    run(bool fast_path, unsigned engine_threads) const
    {
        governor::Scenario sc = governor::Scenario::fromText(R"(
name             = equiv
workload         = hp
tiles            = 25
threads_per_core = 2
epoch_windows    = 2
cycles           = 30000
phases           = 2
phase1.cap_w     = 1.6
phase1.workload  = int
)");
        sc.gov.policy = GetParam();
        if (sc.gov.policy == "pidcap")
            sc.gov.capW = 2.2;

        sim::SystemOptions opts;
        opts.fastPath = fast_path;
        opts.engineThreads = engine_threads;
        sim::System sys(opts);
        telemetry::TelemetryRecorder rec;
        sys.attachTelemetry(&rec);
        const governor::ScenarioResult r = governor::runScenario(sys, sc);

        GovernedRun g;
        arch::PitonChip::RunResult rr;
        rr.cyclesElapsed = r.cycles;
        rr.allHalted = false;
        g.fp = fingerprint(sys.pitonChip(), rr);
        g.resultBits = {r.cycles,
                        r.insts,
                        bitsOf(r.seconds),
                        bitsOf(r.energyJ),
                        bitsOf(r.avgPowerW),
                        bitsOf(r.epi),
                        bitsOf(r.finalDieTempC)};
        for (const auto &ph : r.phases) {
            g.resultBits.push_back(bitsOf(ph.avgPowerW));
            g.resultBits.push_back(bitsOf(ph.epi));
            g.resultBits.push_back(bitsOf(ph.endTimeS));
            g.resultBits.push_back(ph.insts);
        }
        std::ostringstream os;
        telemetry::writeCsv(os, rec);
        g.csv = os.str();
        return g;
    }
};

TEST_P(GovernedEquivalence, BitIdenticalAcrossEnginesAndThreads)
{
    const GovernedRun legacy = run(false, 1);
    ASSERT_FALSE(legacy.csv.empty());
    EXPECT_GT(legacy.fp.totalInsts, 0u);
    for (const unsigned threads : {1u, 2u, 8u}) {
        const GovernedRun fast = run(true, threads);
        expectEqualFingerprints(fast.fp, legacy.fp);
        EXPECT_EQ(fast.resultBits, legacy.resultBits)
            << "threads=" << threads;
        EXPECT_EQ(fast.csv, legacy.csv) << "threads=" << threads;
    }
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, GovernedEquivalence,
                         ::testing::Values("none", "ondemand", "pidcap",
                                           "theas"),
                         [](const auto &info) {
                             return std::string(info.param);
                         });

/** The sharded engine must actually shard: a multithreaded run on the
 *  all-cores-active workload executes run-ahead rounds (otherwise the
 *  thread-sweep tests above would be vacuous) and resolves the
 *  requested thread count. */
TEST(FastPathEquivalenceStress, ShardedRoundsActuallyRun)
{
    sim::SystemOptions opts;
    opts.engineThreads = 8;
    sim::System sys(opts);
    EXPECT_EQ(sys.pitonChip().engineThreads(), 8u);
    const auto programs = workloads::loadMicrobench(
        sys, workloads::Microbench::Int, 25, 2, 0);
    sys.pitonChip().run(30000);
    EXPECT_GT(sys.pitonChip().runAheadRounds(), 0u);
    // 0 = all hardware threads, clamped to the tile count.
    sys.pitonChip().setEngineThreads(0);
    EXPECT_GE(sys.pitonChip().engineThreads(), 1u);
    EXPECT_LE(sys.pitonChip().engineThreads(), 25u);
}

} // namespace
