/**
 * @file
 * Wire-protocol fault-injection battery (src/service/wire, client,
 * server): truncated frames at every header boundary, flipped CRC and
 * payload bytes, oversized length prefixes, bad magic, byte-by-byte
 * reassembly, seeded mutation fuzz — all must produce clean typed
 * errors, never hangs or UB (the suite runs under ASan/UBSan in CI).
 * Also covers both directions of wire-version negotiation: a v2
 * client against this server gets a decodable VersionError frame
 * stamped with ITS version, and this client against a v2 server
 * throws VersionMismatchError, not a CRC failure.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <random>
#include <sys/socket.h>
#include <thread>
#include <vector>

#include "common/net.hh"
#include "service/client.hh"
#include "service/request.hh"
#include "service/server.hh"
#include "service/wire.hh"

namespace
{

using namespace piton;
using namespace piton::service;

Frame
pingFrame(std::uint64_t request_id)
{
    Frame f;
    f.type = FrameType::Ping;
    f.requestId = request_id;
    return f;
}

std::vector<std::uint8_t>
smallRequestFrameBytes(std::uint16_t wire_version = kWireVersion)
{
    ExperimentRequest req;
    req.kind = Kind::MeasurePower;
    req.workload.cores = 2;
    req.workload.threadsPerCore = 1;
    req.workload.totalElements = 256;
    req.samples = 4;
    req.warmupCycles = 4000;
    Frame frame;
    frame.type = FrameType::Request;
    frame.requestId = 7;
    WireWriter w;
    req.encode(w);
    frame.payload = w.take();
    return encodeFrame(frame, wire_version);
}

/** Feed `bytes` and drain the parser, returning completed frames.
 *  Exceptions propagate to the caller. */
std::vector<Frame>
parseAll(FrameParser &parser, const std::vector<std::uint8_t> &bytes)
{
    parser.feed(bytes.data(), bytes.size());
    std::vector<Frame> out;
    Frame f;
    while (parser.next(f))
        out.push_back(std::move(f));
    return out;
}

// ---- parser: truncation ---------------------------------------------

TEST(WireFault, TruncationAtEveryBoundaryIsIncompleteNotAnError)
{
    const std::vector<std::uint8_t> full = smallRequestFrameBytes();
    // Every proper prefix — mid-magic, mid-version, mid-length,
    // mid-payload — parses to "no frame yet", never to an error and
    // never to a frame.
    for (std::size_t cut = 0; cut < full.size(); ++cut) {
        FrameParser parser;
        const std::vector<std::uint8_t> prefix(full.begin(),
                                               full.begin() + cut);
        EXPECT_TRUE(parseAll(parser, prefix).empty()) << "cut " << cut;
        EXPECT_EQ(parser.bufferedBytes(), cut);
        // The missing tail completes exactly one frame.
        const std::vector<std::uint8_t> rest(full.begin() + cut,
                                             full.end());
        const std::vector<Frame> frames = parseAll(parser, rest);
        ASSERT_EQ(frames.size(), 1u) << "cut " << cut;
        EXPECT_EQ(frames[0].type, FrameType::Request);
        EXPECT_EQ(frames[0].requestId, 7u);
    }
}

TEST(WireFault, ByteByByteReassemblyEqualsOneShot)
{
    std::vector<std::uint8_t> stream = encodeFrame(pingFrame(1));
    const std::vector<std::uint8_t> req = smallRequestFrameBytes();
    stream.insert(stream.end(), req.begin(), req.end());
    const std::vector<std::uint8_t> cancel = [] {
        Frame f;
        f.type = FrameType::Cancel;
        f.requestId = 9;
        return encodeFrame(f);
    }();
    stream.insert(stream.end(), cancel.begin(), cancel.end());

    FrameParser whole;
    const std::vector<Frame> at_once = parseAll(whole, stream);

    FrameParser dribble;
    std::vector<Frame> one_by_one;
    for (const std::uint8_t byte : stream) {
        dribble.feed(&byte, 1);
        Frame f;
        while (dribble.next(f))
            one_by_one.push_back(std::move(f));
    }
    ASSERT_EQ(at_once.size(), 3u);
    ASSERT_EQ(one_by_one.size(), 3u);
    for (std::size_t i = 0; i < 3; ++i) {
        EXPECT_EQ(one_by_one[i].type, at_once[i].type);
        EXPECT_EQ(one_by_one[i].requestId, at_once[i].requestId);
        EXPECT_EQ(one_by_one[i].payload, at_once[i].payload);
    }
}

// ---- parser: corruption ---------------------------------------------

TEST(WireFault, FlippedPayloadByteFailsTheCrc)
{
    std::vector<std::uint8_t> bytes = smallRequestFrameBytes();
    bytes[bytes.size() - 1] ^= 0x01; // last payload byte
    FrameParser parser;
    EXPECT_THROW(parseAll(parser, bytes), ServiceError);
}

TEST(WireFault, FlippedCrcByteFailsTheCrc)
{
    std::vector<std::uint8_t> bytes = smallRequestFrameBytes();
    bytes[20] ^= 0x80; // inside the u32 crc field (offset 20..23)
    FrameParser parser;
    EXPECT_THROW(parseAll(parser, bytes), ServiceError);
}

TEST(WireFault, BadMagicIsRejectedImmediately)
{
    std::vector<std::uint8_t> bytes = smallRequestFrameBytes();
    bytes[0] ^= 0xff;
    FrameParser parser;
    EXPECT_THROW(parseAll(parser, bytes), ServiceError);
}

TEST(WireFault, OversizedLengthPrefixIsRejectedBeforeBuffering)
{
    std::vector<std::uint8_t> bytes = smallRequestFrameBytes();
    // payloadLen lives at offset 16..19 (after magic, version, type,
    // requestId); claim kMaxPayloadBytes + 1.
    const std::uint32_t huge = kMaxPayloadBytes + 1;
    std::memcpy(bytes.data() + 16, &huge, sizeof(huge));
    FrameParser parser;
    // Feed only the header: the bogus length must be rejected without
    // waiting for (or allocating) 64 MiB of payload.
    const std::vector<std::uint8_t> header(bytes.begin(),
                                           bytes.begin() + 24);
    EXPECT_THROW(parseAll(parser, header), ServiceError);
}

TEST(WireFault, VersionSkewThrowsTypedErrorWithRequestId)
{
    const std::vector<std::uint8_t> bytes = smallRequestFrameBytes(2);
    FrameParser parser;
    try {
        parseAll(parser, bytes);
        FAIL() << "v2 frame accepted by a v3 parser";
    } catch (const VersionMismatchError &e) {
        EXPECT_EQ(e.got(), 2u);
        EXPECT_EQ(e.want(), kWireVersion);
        EXPECT_EQ(e.requestId(), 7u);
    }
}

TEST(WireFault, SeededMutationFuzzNeverHangsOrLeaks)
{
    const std::vector<std::uint8_t> clean = smallRequestFrameBytes();
    std::mt19937 rng(0xf1ee7u);
    for (int iter = 0; iter < 300; ++iter) {
        std::vector<std::uint8_t> bytes = clean;
        const int flips = 1 + static_cast<int>(rng() % 4);
        for (int i = 0; i < flips; ++i)
            bytes[rng() % bytes.size()] ^=
                static_cast<std::uint8_t>(1u << (rng() % 8));
        FrameParser parser;
        // Feed in random chunks; any outcome is fine except a hang,
        // a crash, or an unknown exception type.
        std::size_t pos = 0;
        try {
            while (pos < bytes.size()) {
                const std::size_t chunk = std::min<std::size_t>(
                    1 + rng() % 11, bytes.size() - pos);
                parser.feed(bytes.data() + pos, chunk);
                pos += chunk;
                Frame f;
                while (parser.next(f)) {
                }
            }
        } catch (const ServiceError &) {
            // VersionMismatchError included — it is a ServiceError.
        }
    }
}

// ---- server under malformed input -----------------------------------

/** Block until `sock` is readable, then recv once (the fixture's
 *  sockets are nonblocking on the accept side). */
ssize_t
recvSome(const net::Socket &sock, std::uint8_t *buf, std::size_t len,
         int timeout_ms = 5000)
{
    if (!net::waitReadable(sock.fd(), timeout_ms))
        return -1;
    return ::recv(sock.fd(), buf, len, 0);
}

TEST(WireFault, ServerSurvivesGarbageTruncationAndDisconnects)
{
    ServerConfig cfg;
    cfg.scheduler.threads = 1;
    ExperimentServer server(cfg);
    server.start();

    {
        // Pure garbage: the server must close the connection, not die.
        net::Socket s = net::connectTcp(server.port());
        const std::uint8_t junk[64] = {0xde, 0xad, 0xbe, 0xef};
        net::sendAll(s, junk, sizeof(junk));
        std::uint8_t buf[16];
        // Server closes on us (recv 0) rather than answering.
        EXPECT_LE(recvSome(s, buf, sizeof(buf)), 0);
    }
    {
        // Mid-frame disconnect: send half a valid request, vanish.
        net::Socket s = net::connectTcp(server.port());
        const std::vector<std::uint8_t> bytes = smallRequestFrameBytes();
        net::sendAll(s, bytes.data(), bytes.size() / 2);
    }
    {
        // Oversized length prefix on a live connection.
        net::Socket s = net::connectTcp(server.port());
        std::vector<std::uint8_t> bytes = smallRequestFrameBytes();
        const std::uint32_t huge = kMaxPayloadBytes + 1;
        std::memcpy(bytes.data() + 16, &huge, sizeof(huge));
        net::sendAll(s, bytes.data(), 24);
        std::uint8_t buf[16];
        EXPECT_LE(recvSome(s, buf, sizeof(buf)), 0);
    }

    // After all that abuse a well-formed client still gets service.
    TcpClient ok(server.port());
    ok.ping();
    ExperimentRequest req;
    req.kind = Kind::MeasurePower;
    req.workload.cores = 2;
    req.workload.threadsPerCore = 1;
    req.workload.totalElements = 256;
    req.samples = 4;
    req.warmupCycles = 4000;
    EXPECT_EQ(ok.run(req).status, Status::Ok);
    server.stop();
}

// ---- version negotiation, both directions ---------------------------

TEST(WireFault, V2ClientGetsDecodableVersionErrorNotCrcFailure)
{
    ServerConfig cfg;
    cfg.scheduler.threads = 1;
    ExperimentServer server(cfg);
    server.start();

    // Pose as a v2 client: a well-formed frame except for the version.
    net::Socket s = net::connectTcp(server.port());
    const std::vector<std::uint8_t> bytes = smallRequestFrameBytes(2);
    net::sendAll(s, bytes.data(), bytes.size());

    // The reply must be a VersionError frame stamped with OUR claimed
    // version (2) so a strict v2 parser would accept it.
    std::uint8_t header[24];
    ASSERT_TRUE(net::recvExact(s, header, sizeof(header)));
    WireReader r(header, sizeof(header));
    EXPECT_EQ(r.u32(), kFrameMagic);
    EXPECT_EQ(r.u16(), 2u); // the peer's version, not the server's
    EXPECT_EQ(r.u16(),
              static_cast<std::uint16_t>(FrameType::VersionError));
    EXPECT_EQ(r.u64(), 7u); // echoes the offending requestId
    const std::uint32_t len = r.u32();
    (void)r.u32(); // crc
    std::vector<std::uint8_t> payload(len);
    ASSERT_TRUE(net::recvExact(s, payload.data(), payload.size()));
    const VersionInfo info = decodeVersionError(payload);
    EXPECT_EQ(info.serverVersion, kWireVersion);
    EXPECT_EQ(info.clientVersion, 2u);
    EXPECT_FALSE(info.message.empty());

    // …and then the stream ends: a skewed connection cannot continue.
    std::uint8_t more;
    EXPECT_FALSE(net::recvExact(s, &more, 1));
    server.stop();
}

/** One-shot fake server: accepts a single connection, optionally
 *  reads the client's frame, writes `reply`, closes. */
class FakeServer
{
  public:
    explicit FakeServer(std::vector<std::uint8_t> reply)
        : listener_(net::listenTcp(0)), port_(net::boundPort(listener_)),
          thread_([this, reply = std::move(reply)] {
              if (!net::waitReadable(listener_.fd(), 5000))
                  return;
              net::Socket conn = net::acceptConnection(listener_);
              if (!conn.valid())
                  return;
              std::uint8_t buf[4096];
              (void)recvSome(conn, buf, sizeof(buf)); // drain request
              if (!reply.empty())
                  net::sendAll(conn, reply.data(), reply.size());
              // conn closes on scope exit (mid-stream disconnect when
              // the reply was truncated).
          })
    {}
    ~FakeServer() { thread_.join(); }
    std::uint16_t port() const { return port_; }

  private:
    net::Socket listener_;
    std::uint16_t port_;
    std::thread thread_;
};

TEST(WireFault, ClientThrowsTypedOnV2StampedReply)
{
    // An old (v2) server replying with its own framing: the client
    // must diagnose version skew, not report a CRC or magic failure.
    FakeServer fake(encodeFrame(pingFrame(1), 2));
    TcpClient client(fake.port());
    try {
        client.ping();
        FAIL() << "v2-stamped reply accepted";
    } catch (const VersionMismatchError &e) {
        EXPECT_EQ(e.got(), 2u);
        EXPECT_EQ(e.want(), kWireVersion);
    }
}

TEST(WireFault, ClientThrowsTypedOnVersionErrorFrame)
{
    // A v3 server telling a (posing-as-v2) peer to go away: the
    // VersionError payload wins over the header version.
    VersionInfo info;
    info.serverVersion = 5; // hypothetical future server
    info.clientVersion = kWireVersion;
    info.message = "upgrade required";
    Frame frame;
    frame.type = FrameType::VersionError;
    frame.requestId = 1;
    frame.payload = encodeVersionError(info);
    FakeServer fake(encodeFrame(frame, kWireVersion));
    TcpClient client(fake.port());
    try {
        client.ping();
        FAIL() << "VersionError frame did not throw";
    } catch (const VersionMismatchError &e) {
        EXPECT_EQ(e.got(), 5u);
        EXPECT_EQ(e.want(), kWireVersion);
    }
}

TEST(WireFault, ClientRejectsCorruptReplies)
{
    {
        // Flipped payload byte → CRC mismatch.
        std::vector<std::uint8_t> reply = smallRequestFrameBytes();
        reply.back() ^= 0x01;
        FakeServer fake(std::move(reply));
        TcpClient client(fake.port());
        EXPECT_THROW(client.ping(), ServiceError);
    }
    {
        // Bad magic.
        std::vector<std::uint8_t> reply = encodeFrame(pingFrame(1));
        reply[0] ^= 0xff;
        FakeServer fake(std::move(reply));
        TcpClient client(fake.port());
        EXPECT_THROW(client.ping(), ServiceError);
    }
    {
        // Oversized length prefix.
        std::vector<std::uint8_t> reply = encodeFrame(pingFrame(1));
        const std::uint32_t huge = kMaxPayloadBytes + 1;
        std::memcpy(reply.data() + 16, &huge, sizeof(huge));
        FakeServer fake(std::move(reply));
        TcpClient client(fake.port());
        EXPECT_THROW(client.ping(), ServiceError);
    }
    {
        // Mid-frame disconnect: header promises more than arrives.
        // (NetError or ServiceError depending on where the cut lands —
        // both are clean typed errors, which is the contract.)
        std::vector<std::uint8_t> reply = smallRequestFrameBytes();
        reply.resize(reply.size() / 2);
        FakeServer fake(std::move(reply));
        TcpClient client(fake.port());
        EXPECT_THROW(client.ping(), std::runtime_error);
    }
    {
        // Clean close before any reply.
        FakeServer fake({});
        TcpClient client(fake.port());
        EXPECT_THROW(client.ping(), std::runtime_error);
    }
}

} // namespace
