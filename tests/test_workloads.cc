/**
 * @file
 * Tests for the workload generators: EPI assembly tests, memory-energy
 * tests, microbenchmarks, and SPEC profiles.
 */

#include <gtest/gtest.h>

#include "workloads/epi_tests.hh"
#include "workloads/memory_tests.hh"
#include "workloads/microbenchmarks.hh"
#include "workloads/spec_profiles.hh"

namespace piton::workloads
{
namespace
{

TEST(EpiTests, AllSixteenVariantsExist)
{
    // Fig. 11's x-axis: 16 instruction variants.
    EXPECT_EQ(epiVariants().size(), 16u);
    EXPECT_EQ(epiVariant("stx (NF)").padNops, 9u);
    EXPECT_EQ(epiVariant("stx (F)").padNops, 0u);
    EXPECT_EQ(epiVariant("sdivx").latency, 72u);
    EXPECT_EQ(epiVariant("fdivd").latency, 79u);
    EXPECT_FALSE(epiVariant("nop").hasOperands);
    EXPECT_FALSE(epiVariant("beq (T)").hasOperands);
}

TEST(EpiTests, UnknownVariantIsFatal)
{
    EXPECT_EXIT(epiVariant("bogus"), testing::ExitedWithCode(1),
                "unknown EPI variant");
}

TEST(EpiTests, ProgramsFitInL1Caches)
{
    // The paper verifies each assembly test fits in the L1 caches.
    for (const auto &v : epiVariants()) {
        const isa::Program p =
            makeEpiProgram(v, OperandPattern::Random, 0);
        EXPECT_LE(p.footprintBytes(), 16u * 1024)
            << v.label << " exceeds the 16 KB L1I";
        EXPECT_GT(p.size(), 20u) << v.label; // unroll factor 20
    }
}

TEST(EpiTests, PatternValues)
{
    EXPECT_EQ(patternValue(OperandPattern::Minimum, 0), 0u);
    EXPECT_EQ(patternValue(OperandPattern::Maximum, 0), ~RegVal{0});
    const RegVal r = patternValue(OperandPattern::Random, 0);
    const int hw = std::popcount(r);
    EXPECT_GT(hw, 24);
    EXPECT_LT(hw, 40);
}

TEST(EpiTests, TilesUseDisjointDataRegions)
{
    // Each of the 25 cores stores to different L2 cache lines to avoid
    // invoking cache coherence (Section IV-E).
    for (TileId a = 0; a < 25; ++a)
        for (TileId b = a + 1; b < 25; ++b)
            EXPECT_GE(epiDataBase(b) - epiDataBase(a), 0x400u);
}

TEST(MemoryTests, PlanLatenciesMatchTableVII)
{
    EXPECT_EQ(memoryScenarioLatency(MemoryScenario::L1Hit), 3u);
    EXPECT_EQ(memoryScenarioLatency(MemoryScenario::LocalL2Hit), 34u);
    EXPECT_EQ(memoryScenarioLatency(MemoryScenario::RemoteL2Hit4), 42u);
    EXPECT_EQ(memoryScenarioLatency(MemoryScenario::RemoteL2Hit8), 52u);
    EXPECT_EQ(memoryScenarioLatency(MemoryScenario::L2Miss), 424u);
}

TEST(MemoryTests, LocalPlanAliasesOneL1SetAtHomeTile)
{
    for (const TileId t : {0u, 7u, 24u}) {
        const MemoryTestPlan plan =
            makeMemoryTestPlan(MemoryScenario::LocalL2Hit, t);
        EXPECT_EQ(plan.home, t);
        ASSERT_EQ(plan.addresses.size(), 20u);
        const Addr set0 = (plan.addresses[0] / 16) % 128;
        for (const Addr a : plan.addresses) {
            EXPECT_EQ((a / 16) % 128, set0);  // same L1D set
            EXPECT_EQ((a >> 6) % 25, t);      // homed at the tile
        }
    }
}

TEST(MemoryTests, RemotePlansTargetPaperHopCounts)
{
    const MemoryTestPlan p4 =
        makeMemoryTestPlan(MemoryScenario::RemoteL2Hit4, 0);
    EXPECT_EQ(p4.home, 4u); // 4 hops straight east
    const MemoryTestPlan p8 =
        makeMemoryTestPlan(MemoryScenario::RemoteL2Hit8, 0);
    EXPECT_EQ(p8.home, 24u); // 8 hops, one turn
}

TEST(MemoryTests, L2MissPlanAliasesOneL2Set)
{
    const MemoryTestPlan plan =
        makeMemoryTestPlan(MemoryScenario::L2Miss, 0);
    const Addr l2set0 = (plan.addresses[0] / 64) % 256;
    for (const Addr a : plan.addresses) {
        EXPECT_EQ((a / 64) % 256, l2set0);
        EXPECT_EQ((a >> 6) % 25, 0u);
    }
}

TEST(Microbenchmarks, IntLoopHaltsAfterIterations)
{
    const isa::Program p = makeIntLoop(10);
    EXPECT_EQ(p.at(p.size() - 1).op, isa::Opcode::Halt);
    const isa::Program inf = makeIntLoop(0);
    EXPECT_EQ(inf.at(inf.size() - 1).op, isa::Opcode::Ba);
}

TEST(Microbenchmarks, HistDividesWorkAcrossThreads)
{
    sim::System sys;
    const auto programs = loadMicrobench(sys, Microbench::Hist, 4, 2,
                                         /*iterations=*/1, 800);
    ASSERT_EQ(programs.size(), 1u);
    // 8 threads x 100 elements each: check the init registers.
    EXPECT_EQ(sys.pitonChip().core(0).thread(0).regs[2], 0u);
    EXPECT_EQ(sys.pitonChip().core(0).thread(0).regs[3], 100u);
    EXPECT_EQ(sys.pitonChip().core(3).thread(1).regs[2], 700u);
    EXPECT_EQ(sys.pitonChip().core(3).thread(1).regs[3], 800u);
}

TEST(Microbenchmarks, HistComputesACorrectHistogram)
{
    sim::System sys;
    constexpr std::uint64_t kElems = 256;
    const auto programs = loadMicrobench(sys, Microbench::Hist, 2, 2,
                                         /*iterations=*/1, kElems);
    const auto r = sys.runToCompletion(200'000'000);
    ASSERT_TRUE(r.completed);
    // Bucket counts must sum to the element count (one outer pass).
    std::uint64_t total = 0;
    for (std::uint32_t bkt = 0; bkt < kHistBuckets; ++bkt)
        total += sys.pitonChip().memory().read64(kHistBucketsBase + bkt * 8);
    EXPECT_EQ(total, kElems);
}

TEST(Microbenchmarks, HpMapsThreadTypesPerPaper)
{
    // 2 T/C: each core runs one integer and one mixed thread; the
    // mixed thread gets a private data base in r1.
    sim::System sys;
    const auto programs =
        loadMicrobench(sys, Microbench::HP, 4, 2, /*iterations=*/0);
    ASSERT_EQ(programs.size(), 2u);
    for (TileId c = 0; c < 4; ++c) {
        EXPECT_EQ(sys.pitonChip().core(c).thread(0).regs[1], 0u);
        EXPECT_GE(sys.pitonChip().core(c).thread(1).regs[1],
                  kMixedDataBase);
    }
}

TEST(Microbenchmarks, TwoPhaseStartsInRequestedPhase)
{
    const isa::Program p = makeTwoPhaseProgram(100, 100);
    // Just sanity: assembles, loops forever, contains nops.
    bool has_nop = false;
    for (const auto &inst : p.instructions())
        has_nop |= (inst.op == isa::Opcode::Nop);
    EXPECT_TRUE(has_nop);
    EXPECT_GT(p.size(), 15u);
}

TEST(SpecProfiles, ThirteenBenchmarkInputPairs)
{
    EXPECT_EQ(specint2006Profiles().size(), 13u);
    EXPECT_DOUBLE_EQ(specProfile("libquantum").t2000Minutes, 201.61);
    EXPECT_GT(specProfile("hmmer-nph3").ioActivity, 4.0); // high I/O
    EXPECT_GT(specProfile("libquantum").ioActivity, 4.0);
    EXPECT_LT(specProfile("sjeng").ioActivity, 2.0);
}

TEST(SpecProfiles, PitonL2MissRatesExceedT1)
{
    // Piton has roughly half the L2 capacity: every profile must miss
    // at least as often as on the T2000.
    for (const auto &b : specint2006Profiles())
        EXPECT_GE(b.l2MpkiPiton, b.l2MpkiT1) << b.name;
}

TEST(SpecProfiles, MixFractionsAreSane)
{
    for (const auto &b : specint2006Profiles()) {
        EXPECT_GT(b.loadFrac, 0.0);
        EXPECT_LT(b.loadFrac + b.storeFrac + b.branchFrac, 0.9) << b.name;
    }
}

} // namespace
} // namespace piton::workloads
