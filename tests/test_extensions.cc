/**
 * @file
 * Tests for the Piton features the paper names but does not
 * characterize in isolation: Execution Drafting (energy deduplication
 * for similar code on the two threads), Coherence Domain Restriction
 * (CDR) in the L2/directory, and the SRAM repair flow referenced by
 * Table IV's footnote.
 */

#include <gtest/gtest.h>

#include "arch/mem_system.hh"
#include "arch/piton_chip.hh"
#include "chip/chip_instance.hh"
#include "chip/yield_model.hh"
#include "isa/assembler.hh"
#include "power/energy_model.hh"

namespace piton
{
namespace
{

class ExecDrafting : public testing::Test
{
  protected:
    ExecDrafting()
        : chip_(params_, chip::makeChip(2), energy_, 21),
          program_(isa::assemble(R"(
              set 0, %r1
          loop:
              add %r1, 1, %r1
              xor %r1, %r2, %r3
              and %r3, %r2, %r4
              cmp %r1, 20000
              bl loop
              halt
          )"))
    {
    }

    double
    runBothThreads(bool drafting)
    {
        chip_.setExecDrafting(drafting);
        chip_.loadProgram(0, 0, &program_);
        chip_.loadProgram(0, 1, &program_);
        const auto r = chip_.run(2'000'000'000ULL);
        EXPECT_TRUE(r.allHalted);
        return chip_.ledger()
            .category(power::Category::Exec)
            .onChipCoreAndSram();
    }

    config::PitonParams params_;
    power::EnergyModel energy_;
    arch::PitonChip chip_;
    isa::Program program_;
};

TEST_F(ExecDrafting, IdenticalThreadsDraftAndSaveEnergy)
{
    const double drafted_j = runBothThreads(true);
    EXPECT_GT(chip_.draftedInsts(), 0u);
    // In lockstep, nearly every instruction of the second thread
    // drafts behind the first.
    const std::uint64_t total = chip_.totalInsts();
    EXPECT_GT(chip_.draftedInsts(), total / 3);

    arch::PitonChip baseline(params_, chip::makeChip(2), energy_, 21);
    baseline.loadProgram(0, 0, &program_);
    baseline.loadProgram(0, 1, &program_);
    baseline.run(2'000'000'000ULL);
    const double baseline_j = baseline.ledger()
                                  .category(power::Category::Exec)
                                  .onChipCoreAndSram();
    EXPECT_EQ(baseline.draftedInsts(), 0u);
    // Front-end dedup saves a visible fraction of execution energy
    // (ExecD's claimed regime is ~10-20% core energy).
    EXPECT_LT(drafted_j, baseline_j * 0.95);
    EXPECT_GT(drafted_j, baseline_j * 0.70);
}

TEST_F(ExecDrafting, DissimilarThreadsDoNotDraft)
{
    const isa::Program other = isa::assemble(R"(
        set 0, %r5
    loop:
        sub %r5, 1, %r5
        cmp %r5, -30000
        bg loop
        halt
    )");
    chip_.setExecDrafting(true);
    chip_.loadProgram(0, 0, &program_);
    chip_.loadProgram(0, 1, &other);
    chip_.run(2'000'000'000ULL);
    // Different programs: drafting should (almost) never trigger.
    EXPECT_LT(chip_.draftedInsts(), chip_.totalInsts() / 100);
}

TEST_F(ExecDrafting, SingleThreadNeverDrafts)
{
    chip_.setExecDrafting(true);
    chip_.loadProgram(0, 0, &program_);
    chip_.run(2'000'000'000ULL);
    EXPECT_EQ(chip_.draftedInsts(), 0u);
}

class CdrTest : public testing::Test
{
  protected:
    CdrTest() : mem_(params_, energy_, ledger_, memory_, 3) {}

    config::PitonParams params_;
    power::EnergyModel energy_;
    power::EnergyLedger ledger_;
    arch::MainMemory memory_;
    arch::MemorySystem mem_;
};

TEST_F(CdrTest, UnrestrictedAddressesAllowAllTiles)
{
    EXPECT_EQ(mem_.domainMaskFor(0x1234), (1u << 25) - 1);
    RegVal d;
    EXPECT_NO_THROW(mem_.load(24, 0x100000, d, 1));
}

TEST_F(CdrTest, DomainMembersShareFreely)
{
    mem_.addCoherenceDomain(0x200000, 0x10000, 0b1111); // tiles 0..3
    EXPECT_EQ(mem_.domainMaskFor(0x200000), 0b1111u);
    EXPECT_EQ(mem_.domainMaskFor(0x20FFFF), 0b1111u);
    EXPECT_EQ(mem_.domainMaskFor(0x210000), (1u << 25) - 1);
    Cycle now = 0;
    RegVal d;
    for (TileId t = 0; t < 4; ++t)
        now += mem_.load(t, 0x200000, d, now).latency;
    now += mem_.store(2, 0x200000, 7, now).latency;
    EXPECT_EQ(memory_.read64(0x200000), 7u);
}

TEST_F(CdrTest, OutsiderAccessPanics)
{
    mem_.addCoherenceDomain(0x200000, 0x10000, 0b1111);
    RegVal d;
    EXPECT_THROW(mem_.load(10, 0x200000, d, 1), std::logic_error);
    EXPECT_THROW(mem_.store(24, 0x200800, 1, 1), std::logic_error);
    RegVal old;
    EXPECT_THROW(mem_.atomicCas(7, 0x200040, 0, 1, old, 1),
                 std::logic_error);
}

TEST_F(CdrTest, RestrictedDirectoryCostsLessEnergy)
{
    mem_.addCoherenceDomain(0x200000, 0x10000, 0b11); // tiles 0,1
    Cycle now = 0;
    RegVal d;

    // One unrestricted and one domain-restricted L2 access from a cold
    // start; compare the L2 energy charged for each.
    const double before_unres =
        ledger_.category(power::Category::CacheL2).total();
    now += mem_.load(0, 0x300000, d, now).latency;
    const double unres =
        ledger_.category(power::Category::CacheL2).total() - before_unres;

    const double before_res =
        ledger_.category(power::Category::CacheL2).total();
    now += mem_.load(0, 0x200000, d, now).latency;
    const double res =
        ledger_.category(power::Category::CacheL2).total() - before_res;

    EXPECT_LT(res, unres); // smaller sharer vector, cheaper lookup
}

TEST_F(CdrTest, InvalidDomainsAreRejected)
{
    EXPECT_THROW(mem_.addCoherenceDomain(0, 0, 1), std::logic_error);
    EXPECT_THROW(mem_.addCoherenceDomain(0, 64, 0), std::logic_error);
    EXPECT_THROW(mem_.addCoherenceDomain(0, 64, 1u << 25),
                 std::logic_error);
}

TEST(SramRepair, RepairRecoversMostSramFailures)
{
    const chip::YieldModel m;
    const chip::RepairConfig repair;
    const auto without = m.testDies(100000, 9);
    const auto with = m.testDiesWithRepair(100000, 9, repair);

    // Shorts are untouched; SRAM-defect classes shrink dramatically.
    EXPECT_NEAR(with.percent(chip::DieStatus::BadVcsShort),
                without.percent(chip::DieStatus::BadVcsShort), 0.5);
    EXPECT_LT(with.percent(chip::DieStatus::UnstableDeterministic),
              without.percent(chip::DieStatus::UnstableDeterministic)
                  / 10.0);
    EXPECT_GT(with.percent(chip::DieStatus::Good),
              without.percent(chip::DieStatus::Good) + 15.0);
}

TEST(SramRepair, ZeroSparesChangesNothing)
{
    const chip::YieldModel m;
    chip::RepairConfig none;
    none.sparesPerArray = 0;
    const double base = m.goodYield(50000, 5);
    const double with_none = m.goodYield(50000, 5, &none);
    EXPECT_NEAR(with_none, base, 0.01);
}

TEST(SramRepair, YieldMonotonicInSpares)
{
    const chip::YieldModel m;
    double prev = 0.0;
    for (std::uint32_t spares : {0u, 1u, 2u}) {
        chip::RepairConfig r;
        r.sparesPerArray = spares;
        const double y = m.goodYield(50000, 5, &r);
        EXPECT_GE(y, prev - 0.005);
        prev = y;
    }
    EXPECT_GT(prev, 0.80); // repaired yield approaches the short limit
}

} // namespace
} // namespace piton
