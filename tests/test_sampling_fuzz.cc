/**
 * @file
 * Property fuzzer for the sampling subsystem's pure layers: seeded
 * random point clouds and synthetic interval profiles drive the
 * clusterer and the slice-selection path, checking the invariants the
 * stitched estimator relies on:
 *
 *  - determinism: the same input always yields the identical result;
 *  - totality: every point is assigned, every assignment is in range;
 *  - representatives are members of the clusters they stand for;
 *  - cluster weights partition the total weight (fixed-order FP sums,
 *    so the partition is exact in bits, not just approximately);
 *  - clusterableIntervals() excludes exactly the tail/idle intervals.
 *
 * PITON_FUZZ_ITERS overrides the case count (CI runs a reduced count
 * under the sanitizers).
 */

#include <cstdint>
#include <cstdlib>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "sampling/cluster.hh"
#include "sampling/profiler.hh"
#include "sampling/sampled_run.hh"

namespace
{

using namespace piton;

int
fuzzIters(int def)
{
    if (const char *s = std::getenv("PITON_FUZZ_ITERS")) {
        const long v = std::strtol(s, nullptr, 10);
        if (v > 0)
            return static_cast<int>(v);
    }
    return def;
}

TEST(SamplingFuzz, KmeansInvariantsHoldOnRandomPointClouds)
{
    const int iters = fuzzIters(60);
    for (int it = 0; it < iters; ++it) {
        Rng rng(0x5A3u + static_cast<std::uint64_t>(it) * 7919u);
        const std::size_t n = 1 + rng.below(40);
        const std::size_t dims = 1 + rng.below(12);
        std::vector<std::vector<double>> pts(n);
        std::vector<double> weights(n);
        for (std::size_t i = 0; i < n; ++i) {
            pts[i].resize(dims);
            for (std::size_t d = 0; d < dims; ++d)
                pts[i][d] = rng.uniform(-4.0, 4.0);
            // Mix in exact duplicates: empty-cluster reseeding and the
            // tie-break rules only matter when points collide.
            if (i > 0 && rng.below(4) == 0)
                pts[i] = pts[rng.below(i)];
            weights[i] = rng.below(8) == 0
                             ? 0.0
                             : rng.uniform(1.0, 1e6);
        }
        sampling::ClusterOptions copts;
        copts.maxClusters = 1 + static_cast<std::uint32_t>(rng.below(10));
        copts.maxIters = 1 + static_cast<std::uint32_t>(rng.below(40));
        copts.seed = rng.next();

        const sampling::ClusterResult a =
            sampling::kmeansCluster(pts, weights, copts);
        const sampling::ClusterResult b =
            sampling::kmeansCluster(pts, weights, copts);

        // Determinism, in full.
        EXPECT_EQ(a.clusters, b.clusters);
        EXPECT_EQ(a.assignment, b.assignment);
        EXPECT_EQ(a.representative, b.representative);
        EXPECT_EQ(a.weightSum, b.weightSum);
        EXPECT_EQ(a.iterations, b.iterations);

        ASSERT_EQ(a.clusters,
                  std::min<std::size_t>(copts.maxClusters, n));
        ASSERT_EQ(a.assignment.size(), n);
        std::vector<double> cluster_w(a.clusters, 0.0);
        for (std::size_t i = 0; i < n; ++i) {
            ASSERT_LT(a.assignment[i], a.clusters);
            cluster_w[a.assignment[i]] += weights[i];
        }
        double total = 0.0;
        for (std::uint32_t c = 0; c < a.clusters; ++c) {
            // weightSum is accumulated in point order per cluster, the
            // same order as this recomputation: exact match required.
            EXPECT_EQ(a.weightSum[c], cluster_w[c]);
            total += a.weightSum[c];
            ASSERT_LT(a.representative[c], n);
            if (cluster_w[c] > 0.0) {
                // A weighted cluster's representative belongs to it.
                EXPECT_EQ(a.assignment[a.representative[c]], c);
            }
        }
        if (total > 0.0) {
            double frac = 0.0;
            for (std::uint32_t c = 0; c < a.clusters; ++c)
                frac += a.weight[c];
            EXPECT_NEAR(frac, 1.0, 1e-9);
        }
    }
}

TEST(SamplingFuzz, SliceSelectionIsDeterministicOnSyntheticProfiles)
{
    const int iters = fuzzIters(40);
    for (int it = 0; it < iters; ++it) {
        Rng rng(0xC10Du + static_cast<std::uint64_t>(it) * 104729u);
        const std::size_t n = rng.below(30);
        const std::size_t dims = 4 + rng.below(16);
        std::vector<sampling::IntervalRecord> recs(n);
        for (auto &rec : recs) {
            rec.insns = rng.below(5) == 0 ? 0 : 1000 + rng.below(100000);
            rec.partial = rng.below(8) == 0;
            rec.activeJ = rng.uniform(0.0, 1e-3);
            rec.idleJ = rng.uniform(0.0, 1e-4);
            rec.seconds = rng.uniform(1e-6, 1e-3);
            rec.bbv.resize(dims);
            for (auto &v : rec.bbv)
                v = rng.below(1000);
        }
        sampling::SampledOptions sopts;
        sopts.maxSlices = 1 + static_cast<std::uint32_t>(rng.below(8));
        sopts.seed = rng.next();

        const std::vector<std::size_t> idx =
            sampling::clusterableIntervals(recs);
        for (const std::size_t i : idx) {
            EXPECT_FALSE(recs[i].partial);
            EXPECT_GT(recs[i].insns, 0u);
        }
        std::size_t excluded = 0;
        for (std::size_t i = 0; i < n; ++i)
            if (recs[i].partial || recs[i].insns == 0)
                ++excluded;
        EXPECT_EQ(idx.size() + excluded, n);

        const sampling::ClusterResult a =
            sampling::selectSlices(recs, sopts);
        const sampling::ClusterResult b =
            sampling::selectSlices(recs, sopts);
        EXPECT_EQ(a.assignment, b.assignment);
        EXPECT_EQ(a.representative, b.representative);
        EXPECT_EQ(a.weightSum, b.weightSum);
        if (!idx.empty())
            EXPECT_EQ(a.assignment.size(), idx.size());
    }
}

} // namespace
