/**
 * @file
 * Tests for the instruction-trace hook and the power-capping study.
 */

#include <gtest/gtest.h>

#include "arch/piton_chip.hh"
#include "chip/chip_instance.hh"
#include "core/power_cap.hh"
#include "isa/assembler.hh"

namespace piton
{
namespace
{

TEST(TraceHook, SeesEveryRetiredInstructionInOrder)
{
    config::PitonParams params;
    power::EnergyModel energy;
    arch::PitonChip chip(params, chip::makeChip(2), energy, 5);
    const isa::Program p = isa::assemble(R"(
        set 1, %r1
        add %r1, 2, %r2
        cmp %r2, 3
        beq done
        nop
    done:
        halt
    )");
    chip.loadProgram(4, 1, &p);

    std::vector<std::pair<Addr, isa::Opcode>> seen;
    chip.setTraceHook([&](TileId tile, ThreadId tid, Cycle, Addr pc,
                          const isa::Instruction &inst) {
        EXPECT_EQ(tile, 4u);
        EXPECT_EQ(tid, 1u);
        seen.emplace_back(pc, inst.op);
    });
    const auto r = chip.run(100'000);
    ASSERT_TRUE(r.allHalted);

    // set, add, cmp, beq (taken over the nop), halt.
    ASSERT_EQ(seen.size(), 5u);
    EXPECT_EQ(seen[0].second, isa::Opcode::SetImm);
    EXPECT_EQ(seen[1].second, isa::Opcode::Add);
    EXPECT_EQ(seen[2].second, isa::Opcode::Cmp);
    EXPECT_EQ(seen[3].second, isa::Opcode::Beq);
    EXPECT_EQ(seen[4].second, isa::Opcode::Halt);
    // PCs advance by 4 and skip the nop after the taken branch.
    EXPECT_EQ(seen[1].first, seen[0].first + 4);
    EXPECT_EQ(seen[4].first, seen[3].first + 8);
}

TEST(TraceHook, IFetchStallsAreNotTraced)
{
    config::PitonParams params;
    power::EnergyModel energy;
    arch::PitonChip chip(params, chip::makeChip(2), energy, 5);
    const isa::Program p = isa::assemble("nop\nhalt\n");
    chip.loadProgram(0, 0, &p);
    int calls = 0;
    chip.setTraceHook([&](TileId, ThreadId, Cycle, Addr,
                          const isa::Instruction &) { ++calls; });
    chip.run(100'000);
    EXPECT_EQ(calls, 2); // the I-miss retry does not double-count
}

class PowerCapTest : public testing::Test
{
  protected:
    core::PowerCapExperiment exp_{sim::SystemOptions{}, /*samples=*/8};
};

TEST_F(PowerCapTest, PowerMonotonicInCores)
{
    const double p0 = exp_.hpPowerW(0);
    const double p5 = exp_.hpPowerW(5);
    const double p25 = exp_.hpPowerW(25);
    EXPECT_LT(p0, p5);
    EXPECT_LT(p5, p25);
    EXPECT_NEAR(p0, 1.9, 0.1);  // Chip #3 idle
    EXPECT_GT(p25, 3.5);        // full HP (the paper's max regime)
}

TEST_F(PowerCapTest, StaticCapRespectsTheCap)
{
    for (const double cap : {2.4, 3.0, 3.6}) {
        const auto r = exp_.maxCoresUnderCap(cap);
        EXPECT_LE(r.powerAtMaxW, cap);
        if (r.maxCores < 25) {
            EXPECT_GT(exp_.hpPowerW(r.maxCores + 1), cap);
        }
    }
    // A cap below idle supports zero extra cores.
    const auto tight = exp_.maxCoresUnderCap(1.0);
    EXPECT_EQ(tight.maxCores, 0u);
}

TEST_F(PowerCapTest, GovernorConvergesUnderTheCap)
{
    const auto trace = exp_.reactiveGovernor(3.0, 0.5, 25.0);
    ASSERT_FALSE(trace.points.empty());
    // Starts at full demand, throttles down...
    EXPECT_EQ(trace.points.front().activeCores, 25u);
    // ... and settles near the static answer.
    const auto static_r = exp_.maxCoresUnderCap(3.0);
    EXPECT_NEAR(static_r.maxCores, trace.settledCores, 2u);
    // The violation window is only the initial throttle-down.
    EXPECT_LT(trace.violationFraction, 0.45);
    // The tail of the trace stays under the cap.
    for (std::size_t i = trace.points.size() - 5;
         i < trace.points.size(); ++i)
        EXPECT_LE(trace.points[i].measuredPowerW, 3.0 + 0.01);
}

} // namespace
} // namespace piton
