/**
 * @file
 * Unit tests for the common substrate: statistics, RNG, tables.
 */

#include <cmath>
#include <sstream>

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "common/types.hh"

namespace piton
{
namespace
{

TEST(RunningStats, EmptyIsZero)
{
    RunningStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, MeanAndStddevMatchClosedForm)
{
    RunningStats s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 2.0); // classic textbook dataset
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, SingleSampleHasZeroSpread)
{
    RunningStats s;
    s.add(42.0);
    EXPECT_DOUBLE_EQ(s.mean(), 42.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
    EXPECT_DOUBLE_EQ(s.sampleStddev(), 0.0);
}

TEST(RunningStats, ResetClears)
{
    RunningStats s;
    s.add(1.0);
    s.add(2.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(RunningStats, SampleStddevUsesNMinusOne)
{
    RunningStats s;
    s.add(1.0);
    s.add(3.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 1.0);
    EXPECT_NEAR(s.sampleStddev(), std::sqrt(2.0), 1e-12);
}

TEST(LinearFit, RecoversExactLine)
{
    LinearFit f;
    for (int x = 0; x < 10; ++x)
        f.add(x, 3.5 * x + 2.0);
    const LineFit line = f.fit();
    EXPECT_NEAR(line.slope, 3.5, 1e-12);
    EXPECT_NEAR(line.intercept, 2.0, 1e-12);
    EXPECT_NEAR(line.r2, 1.0, 1e-12);
}

TEST(LinearFit, NoisyLineHasReasonableR2)
{
    Rng rng(7);
    LinearFit f;
    for (int x = 0; x < 100; ++x)
        f.add(x, 2.0 * x + rng.gaussian(0.0, 1.0));
    const LineFit line = f.fit();
    EXPECT_NEAR(line.slope, 2.0, 0.05);
    EXPECT_GT(line.r2, 0.99);
}

TEST(LinearFit, ConstantYGivesZeroSlope)
{
    LinearFit f;
    f.add(0.0, 5.0);
    f.add(1.0, 5.0);
    f.add(2.0, 5.0);
    const LineFit line = f.fit();
    EXPECT_DOUBLE_EQ(line.slope, 0.0);
    EXPECT_DOUBLE_EQ(line.intercept, 5.0);
    EXPECT_DOUBLE_EQ(line.r2, 1.0);
}

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(42);
    RunningStats s;
    for (int i = 0; i < 20000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        s.add(u);
    }
    EXPECT_NEAR(s.mean(), 0.5, 0.01);
    EXPECT_NEAR(s.stddev(), std::sqrt(1.0 / 12.0), 0.01);
}

TEST(Rng, GaussianMoments)
{
    Rng rng(42);
    RunningStats s;
    for (int i = 0; i < 50000; ++i)
        s.add(rng.gaussian(10.0, 3.0));
    EXPECT_NEAR(s.mean(), 10.0, 0.1);
    EXPECT_NEAR(s.stddev(), 3.0, 0.1);
}

TEST(Rng, BelowIsUnbiasedAndInRange)
{
    Rng rng(9);
    std::array<int, 5> buckets{};
    for (int i = 0; i < 50000; ++i) {
        const auto v = rng.below(5);
        ASSERT_LT(v, 5u);
        ++buckets[v];
    }
    for (int count : buckets)
        EXPECT_NEAR(count, 10000, 500);
}

TEST(Rng, ForkDecorrelates)
{
    Rng a(5);
    Rng child = a.fork();
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (a.next() == child.next());
    EXPECT_LT(same, 2);
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(11);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(TextTable, AlignsAndCounts)
{
    TextTable t({"Name", "Value"});
    t.addRow({"alpha", "1"});
    t.addRow({"bb", "22"});
    EXPECT_EQ(t.rowCount(), 2u);
    std::ostringstream os;
    t.print(os);
    const std::string s = os.str();
    EXPECT_NE(s.find("Name"), std::string::npos);
    EXPECT_NE(s.find("alpha"), std::string::npos);
    EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(TextTable, RowWidthMismatchPanics)
{
    TextTable t({"a", "b"});
    EXPECT_THROW(t.addRow({"only-one"}), std::logic_error);
}

TEST(CsvWriter, QuotesSpecialCells)
{
    std::ostringstream os;
    CsvWriter w(os);
    w.writeRow({"plain", "with,comma", "with\"quote"});
    EXPECT_EQ(os.str(), "plain,\"with,comma\",\"with\"\"quote\"\n");
}

TEST(Format, FixedAndPlusMinus)
{
    EXPECT_EQ(fmtF(3.14159, 2), "3.14");
    EXPECT_EQ(fmtPm(389.32, 1.46, 1), "389.3±1.5");
}

TEST(Units, RoundTripConversions)
{
    EXPECT_DOUBLE_EQ(wToMw(mwToW(123.0)), 123.0);
    EXPECT_DOUBLE_EQ(jToPj(pjToJ(7.5)), 7.5);
    EXPECT_DOUBLE_EQ(jToNj(njToJ(7.5)), 7.5);
    EXPECT_DOUBLE_EQ(hzToMhz(mhzToHz(500.05)), 500.05);
}

} // namespace
} // namespace piton
