/**
 * @file
 * Tests for the sweep-parallelism substrate (common/parallel.hh) and
 * the determinism contract of the parallel experiment drivers: a sweep
 * fanned out over N workers must produce bit-identical results to the
 * same sweep run serially.
 */

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/parallel.hh"
#include "core/epi_experiment.hh"
#include "core/vf_experiments.hh"

namespace piton
{
namespace
{

TEST(DeriveTaskSeed, DeterministicAndDecorrelated)
{
    const std::uint64_t base = 0x517;
    EXPECT_EQ(deriveTaskSeed(base, 0), deriveTaskSeed(base, 0));
    EXPECT_EQ(deriveTaskSeed(base, 7), deriveTaskSeed(base, 7));

    std::set<std::uint64_t> seeds;
    for (std::uint64_t i = 0; i < 1000; ++i)
        seeds.insert(deriveTaskSeed(base, i));
    EXPECT_EQ(seeds.size(), 1000u); // no collisions across a sweep
    EXPECT_NE(deriveTaskSeed(base, 0), deriveTaskSeed(base + 1, 0));
}

TEST(ResolveThreadCount, ZeroMeansHardwareAndNeverBelowOne)
{
    EXPECT_GE(resolveThreadCount(0), 1u);
    EXPECT_EQ(resolveThreadCount(1), 1u);
    EXPECT_EQ(resolveThreadCount(6), 6u);
}

TEST(BoundedTaskQueue, FifoOrderAndCloseSemantics)
{
    BoundedTaskQueue q(8);
    EXPECT_EQ(q.capacity(), 8u);
    std::vector<int> order;
    for (int i = 0; i < 3; ++i)
        EXPECT_TRUE(q.push([&order, i] { order.push_back(i); }));
    EXPECT_EQ(q.size(), 3u);

    q.close();
    EXPECT_FALSE(q.push([] {})); // closed: new work refused...

    std::function<void()> task;
    while (q.pop(task)) // ...but queued work still drains
        task();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
    EXPECT_FALSE(q.pop(task)); // closed and empty
}

TEST(ThreadPool, RunsEverySubmittedTaskAndIsReusable)
{
    ThreadPool pool(4, 16);
    EXPECT_EQ(pool.threadCount(), 4u);

    std::atomic<int> count{0};
    for (int round = 0; round < 2; ++round) {
        for (int i = 0; i < 100; ++i)
            pool.submit([&count] { ++count; });
        pool.wait();
        EXPECT_EQ(count.load(), (round + 1) * 100);
    }
}

TEST(ThreadPool, WaitRethrowsTaskException)
{
    ThreadPool pool(2, 8);
    for (int i = 0; i < 8; ++i)
        pool.submit([i] {
            if (i == 3)
                throw std::runtime_error("task failed");
        });
    EXPECT_THROW(pool.wait(), std::runtime_error);
}

TEST(ParallelFor, CoversEachIndexExactlyOnceAtAnyThreadCount)
{
    for (const unsigned threads : {1u, 4u, 0u}) {
        constexpr std::size_t n = 257; // not a multiple of the workers
        std::vector<int> hits(n, 0);
        parallelFor(n, threads,
                    [&hits](std::size_t i) { hits[i] += 1; });
        for (std::size_t i = 0; i < n; ++i)
            EXPECT_EQ(hits[i], 1) << "index " << i;
    }
}

TEST(ParallelFor, HandlesEmptyAndSmallerThanPoolRanges)
{
    parallelFor(0, 4, [](std::size_t) { FAIL() << "n = 0 ran a task"; });

    std::vector<int> hits(2, 0);
    parallelFor(2, 8, [&hits](std::size_t i) { hits[i] += 1; });
    EXPECT_EQ(hits[0], 1);
    EXPECT_EQ(hits[1], 1);
}

TEST(ParallelFor, PropagatesFirstException)
{
    EXPECT_THROW(parallelFor(16, 4,
                             [](std::size_t i) {
                                 if (i == 5)
                                     throw std::runtime_error("boom");
                             }),
                 std::runtime_error);
}

TEST(WorkerGang, EveryShardRunsExactlyOncePerRound)
{
    WorkerGang gang(4);
    EXPECT_EQ(gang.shards(), 4u);

    constexpr int kRounds = 2000; // µs-scale dispatch is the point
    std::vector<std::atomic<int>> hits(gang.shards());
    for (auto &h : hits)
        h.store(0);
    for (int round = 0; round < kRounds; ++round) {
        gang.run([&hits](unsigned shard) { ++hits[shard]; });
        // run() is a full barrier: all shards of this round are done.
        for (unsigned s = 0; s < gang.shards(); ++s)
            ASSERT_EQ(hits[s].load(), round + 1) << "shard " << s;
    }
}

TEST(WorkerGang, CallerParticipatesAsShardZero)
{
    WorkerGang gang(3);
    const std::thread::id caller = std::this_thread::get_id();
    std::array<std::thread::id, 3> ids;
    gang.run([&ids](unsigned shard) {
        ids[shard] = std::this_thread::get_id();
    });
    EXPECT_EQ(ids[0], caller); // shard 0 runs inline on the caller
    EXPECT_NE(ids[1], caller);
    EXPECT_NE(ids[2], caller);
    EXPECT_NE(ids[1], ids[2]);
}

TEST(WorkerGang, SingleShardGangSpawnsNoThreads)
{
    WorkerGang gang(1);
    EXPECT_EQ(gang.shards(), 1u);
    int runs = 0;
    gang.run([&runs](unsigned shard) {
        EXPECT_EQ(shard, 0u);
        ++runs;
    });
    EXPECT_EQ(runs, 1);
}

TEST(WorkerGang, SurvivesParkedWorkersBetweenBursts)
{
    WorkerGang gang(4);
    std::atomic<int> count{0};
    const auto tick = [&count](unsigned) { ++count; };
    gang.run(tick);
    // Let the workers fall out of their spin phase and park on the
    // condition variable, then make sure a new epoch still wakes them.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    gang.run(tick);
    EXPECT_EQ(count.load(), 8);
}

// --- serial vs parallel sweep determinism ---------------------------

TEST(SweepDeterminism, VfScalingIdenticalAtOneAndFourThreads)
{
    const core::VfScalingExperiment exp;
    const auto serial = exp.runAll({1, 2, 3}, 1);
    const auto parallel = exp.runAll({1, 2, 3}, 4);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].chipId, parallel[i].chipId);
        EXPECT_EQ(serial[i].vddV, parallel[i].vddV);
        EXPECT_EQ(serial[i].fmaxMhz, parallel[i].fmaxMhz);
        EXPECT_EQ(serial[i].nextStepMhz, parallel[i].nextStepMhz);
        EXPECT_EQ(serial[i].thermallyLimited,
                  parallel[i].thermallyLimited);
        EXPECT_EQ(serial[i].dieTempC, parallel[i].dieTempC);
    }
}

TEST(SweepDeterminism, MemoryEnergyIdenticalAtOneAndFourThreads)
{
    sim::SystemOptions serial_opts;
    serial_opts.sweepThreads = 1;
    sim::SystemOptions parallel_opts;
    parallel_opts.sweepThreads = 4;

    const core::MemoryEnergyExperiment serial_exp(serial_opts, 8);
    const core::MemoryEnergyExperiment parallel_exp(parallel_opts, 8);
    const auto serial = serial_exp.runAll();
    const auto parallel = parallel_exp.runAll();
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].scenario, parallel[i].scenario);
        EXPECT_EQ(serial[i].latency, parallel[i].latency);
        // Bit-identical, not merely close: each task derives its seed
        // from the task index, never from scheduling order.
        EXPECT_EQ(serial[i].energyNj, parallel[i].energyNj);
        EXPECT_EQ(serial[i].errNj, parallel[i].errNj);
    }
}

} // namespace
} // namespace piton
