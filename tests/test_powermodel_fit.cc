/**
 * @file
 * Tests for the linear-algebra helpers and the power-model fitting
 * workflow (the paper's open-data use case).
 */

#include <gtest/gtest.h>

#include "common/linalg.hh"
#include "core/power_model_fit.hh"
#include "isa/assembler.hh"
#include "workloads/microbenchmarks.hh"

namespace piton
{
namespace
{

TEST(LinAlg, SolvesSmallSystems)
{
    // 2x + y = 5; x - y = 1  ->  x = 2, y = 1.
    const auto x = solveLinearSystem({2, 1, 1, -1}, {5, 1});
    ASSERT_EQ(x.size(), 2u);
    EXPECT_NEAR(x[0], 2.0, 1e-12);
    EXPECT_NEAR(x[1], 1.0, 1e-12);
}

TEST(LinAlg, DetectsSingularSystems)
{
    EXPECT_TRUE(solveLinearSystem({1, 2, 2, 4}, {3, 6}).empty());
}

TEST(LinAlg, PivotingHandlesZeroDiagonal)
{
    // 0x + y = 1; x + 0y = 2 needs a row swap.
    const auto x = solveLinearSystem({0, 1, 1, 0}, {1, 2});
    ASSERT_EQ(x.size(), 2u);
    EXPECT_NEAR(x[0], 2.0, 1e-12);
    EXPECT_NEAR(x[1], 1.0, 1e-12);
}

TEST(LinAlg, LeastSquaresRecoversOverdeterminedFit)
{
    // y = 3a + 2b over 4 observations (exactly consistent).
    const std::vector<double> a = {1, 0, 0, 1, 1, 1, 2, 1};
    const std::vector<double> b = {3, 2, 5, 8};
    const auto x = leastSquares(a, 4, 2, b);
    ASSERT_EQ(x.size(), 2u);
    EXPECT_NEAR(x[0], 3.0, 1e-9);
    EXPECT_NEAR(x[1], 2.0, 1e-9);
}

TEST(PowerModelFit, RecoversEpiScaleAndPredicts)
{
    core::PowerModelFit fitter(sim::SystemOptions{}, /*samples=*/12);

    // A reduced training set: int, load, branch-heavy, straight-line.
    std::vector<core::PowerObservation> train;
    auto add_variant = [&](const char *label,
                           workloads::OperandPattern pattern) {
        std::vector<isa::Program> per_tile;
        per_tile.reserve(25);
        for (TileId t = 0; t < 25; ++t)
            per_tile.push_back(workloads::makeEpiProgram(
                workloads::epiVariant(label), pattern, t));
        train.push_back(fitter.observe(label, per_tile, pattern));
    };
    add_variant("nop", workloads::OperandPattern::Random);
    add_variant("add", workloads::OperandPattern::Minimum);
    add_variant("add", workloads::OperandPattern::Maximum);
    add_variant("ldx", workloads::OperandPattern::Random);
    train.push_back(fitter.observe("branchy", isa::assemble(
        "set 0, %r1\nloop:\nadd %r1, 1, %r1\ncmp %r1, 0\nbne loop\n"
        "halt\n")));

    const auto model = fitter.fit(train);
    ASSERT_TRUE(model.valid);
    EXPECT_NEAR(model.idleW, 2.015, 0.06);

    // Recovered coefficients land near the measured EPI values.
    const auto cls = [](isa::InstClass c) {
        return static_cast<std::size_t>(c);
    };
    EXPECT_NEAR(model.classEpiPj[cls(isa::InstClass::IntSimple)], 105.0,
                45.0);
    EXPECT_NEAR(model.classEpiPj[cls(isa::InstClass::Load)], 295.0,
                80.0);

    // And the model predicts an unseen mixed workload within ~10%.
    const auto obs =
        fitter.observe("int-mix", workloads::makeIntLoop(0));
    const double predicted = model.predictW(obs.classRates);
    EXPECT_NEAR(predicted, obs.measuredPowerW,
                0.10 * obs.measuredPowerW);
}

TEST(PowerModelFit, FitFailsGracefullyWithTooFewObservations)
{
    core::PowerModelFit fitter(sim::SystemOptions{}, /*samples=*/8);
    std::vector<core::PowerObservation> train;
    train.push_back(
        fitter.observe("only-one", workloads::makeIntLoop(0)));
    const auto model = fitter.fit(train);
    EXPECT_FALSE(model.valid); // more active classes than observations
}

} // namespace
} // namespace piton
