/**
 * @file
 * Closed-loop DVFS governor suite (DESIGN.md §13): policy unit tests on
 * synthetic observations, V-f helper invariants, scenario parsing and
 * validation, and governed end-to-end runs — the PID cap hold, distinct
 * per-policy trajectories, run-to-run determinism, and the governor.*
 * telemetry series.
 */

#include <cmath>
#include <cstring>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "config/kv_file.hh"
#include "config/piton_params.hh"
#include "governor/governor.hh"
#include "governor/scenario.hh"
#include "sim/system.hh"
#include "telemetry/export.hh"
#include "telemetry/recorder.hh"
#include "telemetry/schema.hh"
#include "workloads/microbenchmarks.hh"

namespace
{

using namespace piton;

governor::Platform
testPlatform(const config::PitonParams &params)
{
    governor::Platform plat;
    plat.piton = &params;
    plat.speedFactor = 1.0;
    plat.nominalVddV = 1.0;
    plat.nominalFreqMhz = 500.05;
    return plat;
}

governor::EpochObs
uniformObs(const governor::Governor &gov, std::uint32_t tiles,
           std::uint64_t insts_per_tile, std::uint64_t stall_per_tile)
{
    governor::EpochObs obs;
    obs.epochCycles = 10'000;
    obs.epochS = 1e-3;
    obs.onChipPowerW = 3.0;
    obs.railPowerW = {2.5, 0.4, 0.1};
    obs.vddV = gov.platform().nominalVddV;
    obs.freqMhz = gov.platform().nominalFreqMhz;
    obs.tiles.resize(tiles);
    for (auto &t : obs.tiles) {
        t.insts = insts_per_tile;
        t.stallCycles = stall_per_tile;
        t.freqMhz = obs.freqMhz;
    }
    return obs;
}

TEST(GovernorFactory, PolicyNamesRoundTrip)
{
    for (const char *policy : {"none", "ondemand", "pidcap", "theas"}) {
        governor::GovernorParams p;
        p.policy = policy;
        if (p.policy == "pidcap")
            p.capW = 2.0;
        const auto gov = governor::makeGovernor(p);
        EXPECT_STREQ(gov->name(), policy);
    }
    governor::GovernorParams bogus;
    bogus.policy = "turbo";
    EXPECT_THROW(governor::makeGovernor(bogus), std::runtime_error);
    EXPECT_NE(std::strstr(governor::governorPolicyNames(), "pidcap"),
              nullptr);
}

TEST(GovernorFactory, NoneIsConstructible)
{
    governor::GovernorParams p;
    p.policy = "none";
    EXPECT_NO_THROW(governor::makeGovernor(p));
}

TEST(GovernorFactory, PidcapValidatesItsBudget)
{
    governor::GovernorParams p;
    p.policy = "pidcap";
    EXPECT_THROW(governor::makeGovernor(p), std::runtime_error); // capW=0
    p.capW = 2.0;
    p.capRail = "vddq";
    EXPECT_THROW(governor::makeGovernor(p), std::runtime_error);
    p.capRail = "vdd";
    EXPECT_NO_THROW(governor::makeGovernor(p));
}

TEST(GovernorVf, HelpersAreConsistent)
{
    const config::PitonParams params;
    governor::GovernorParams p;
    p.policy = "none";
    const auto gov = governor::makeGovernor(p);
    gov->init(testPlatform(params));

    const power::VfModel &vf = gov->vfModel();
    const double fmax10 = gov->fmaxMhz(1.0);
    EXPECT_NEAR(fmax10, 514.33, 2.0); // the paper's 1.0 V anchor
    EXPECT_LT(gov->fmaxMhz(0.8), fmax10);

    // vddForFreq must return a supply whose fmax sustains the request.
    for (const double f : {120.0, 285.0, 400.0, 500.0}) {
        const double v = gov->vddForFreq(f);
        EXPECT_GE(v, vf.params().minVddV);
        EXPECT_LE(v, p.maxVddV);
        EXPECT_GE(vf.rawFmaxMhz(v, 1.0), f * (1.0 - 1e-9));
    }
    // Deterministic: bit-identical on repeated evaluation.
    EXPECT_EQ(gov->vddForFreq(333.3), gov->vddForFreq(333.3));

    // clampFreqMhz lands on the PLL grid inside the legal band.
    const double f = gov->clampFreqMhz(12345.0);
    EXPECT_LE(f, gov->fmaxMhz(p.maxVddV));
    EXPECT_EQ(f, vf.quantizeMhz(f));
    EXPECT_GE(gov->clampFreqMhz(-5.0), vf.params().freqStepMhz);
}

TEST(GovernorPlacement, DefaultIsLinearTheasClustersCenter)
{
    const config::PitonParams params;
    governor::GovernorParams p;
    p.policy = "ondemand";
    const auto linear = governor::makeGovernor(p);
    linear->init(testPlatform(params));
    const auto lin = linear->placeTiles(5);
    EXPECT_EQ(lin, (std::vector<TileId>{0, 1, 2, 3, 4}));

    p.policy = "theas";
    const auto theas = governor::makeGovernor(p);
    theas->init(testPlatform(params));
    const auto placed = theas->placeTiles(9);
    ASSERT_EQ(placed.size(), 9u);
    // Distinct tiles, first is the mesh center, hop distances ascend.
    const TileId center = config::tileIdAt(params, params.meshWidth / 2,
                                           params.meshHeight / 2);
    EXPECT_EQ(placed[0], center);
    std::set<TileId> uniq(placed.begin(), placed.end());
    EXPECT_EQ(uniq.size(), placed.size());
    std::uint32_t prev = 0;
    for (const TileId t : placed) {
        const std::uint32_t d = config::hopDistance(params, center, t);
        EXPECT_GE(d, prev);
        prev = d;
    }
    // The 9 closest tiles to the center are all within 2 hops (the
    // cache-aware cluster; a linear placement would span 4+).
    EXPECT_LE(prev, 2u);
}

TEST(GovernorOndemand, LadderBoostsAndDecays)
{
    const config::PitonParams params;
    governor::GovernorParams p;
    p.policy = "ondemand";
    p.epochWindows = 1;
    const auto gov = governor::makeGovernor(p);
    gov->init(testPlatform(params));

    // Saturated tiles: jump straight to fmax.
    const std::uint64_t slots =
        static_cast<std::uint64_t>(params.threadsPerCore) * 10'000;
    auto hot = uniformObs(*gov, params.tileCount, slots, 0);
    const auto boost = gov->controlEpoch(hot);
    EXPECT_TRUE(boost.changed);
    EXPECT_GT(boost.freqMhz, hot.freqMhz);
    EXPECT_EQ(boost.freqMhz, gov->fmaxMhz(p.maxVddV));
    EXPECT_GE(gov->vfModel().rawFmaxMhz(boost.vddV, 1.0), boost.freqMhz);

    // Near-idle tiles: step down the grid, epoch over epoch.
    auto idle = uniformObs(*gov, params.tileCount, 10, 0);
    double prev_f = boost.freqMhz;
    for (int epoch = 0; epoch < 3; ++epoch) {
        idle.freqMhz = prev_f;
        for (auto &t : idle.tiles)
            t.freqMhz = prev_f;
        const auto act = gov->controlEpoch(idle);
        EXPECT_TRUE(act.changed);
        EXPECT_LT(act.freqMhz, prev_f);
        prev_f = act.freqMhz;
    }
}

TEST(GovernorTheas, GatesIdleThrottlesStalled)
{
    const config::PitonParams params;
    governor::GovernorParams p;
    p.policy = "theas";
    const auto gov = governor::makeGovernor(p);
    gov->init(testPlatform(params));

    auto obs = uniformObs(*gov, params.tileCount, 1000, 0);
    // Tile 0 truly idle; tile 1 memory-bound (10% stall); the rest busy
    // with negligible stalls.
    obs.tiles[0].insts = 0;
    obs.tiles[0].stallCycles = 0;
    obs.tiles[1].stallCycles =
        params.threadsPerCore * obs.epochCycles / 10;
    const auto act = gov->controlEpoch(obs);
    ASSERT_TRUE(act.changed);
    ASSERT_EQ(act.tileFreqMhz.size(), obs.tiles.size());
    EXPECT_EQ(act.tileFreqMhz[0], 0.0); // hard-gated
    EXPECT_LT(act.tileFreqMhz[1], obs.freqMhz); // throttled
    EXPECT_GT(act.tileFreqMhz[2], obs.freqMhz); // compute-bound boosts
    EXPECT_LE(act.tileFreqMhz[1], act.freqMhz);
}

TEST(GovernorPidcap, ConvergesOnSyntheticPlant)
{
    const config::PitonParams params;
    governor::GovernorParams p;
    p.policy = "pidcap";
    p.capW = 2.0;
    p.epochWindows = 1;
    const auto gov = governor::makeGovernor(p);
    gov->init(testPlatform(params));

    // Plant: power proportional to frequency through the nominal point
    // (3 W at 500 MHz) — the first-order model the gains were tuned on.
    double f = 500.05;
    double measured = 3.0;
    for (int epoch = 0; epoch < 80; ++epoch) {
        governor::EpochObs obs = uniformObs(*gov, params.tileCount, 0, 0);
        obs.freqMhz = f;
        obs.onChipPowerW = measured;
        const auto act = gov->controlEpoch(obs);
        if (act.changed)
            f = act.freqMhz;
        measured = 3.0 * f / 500.05;
    }
    EXPECT_NEAR(measured, p.capW, 0.08 * p.capW);
}

TEST(GovernorKv, ParamsFromKvOverridesDefaults)
{
    const auto kv = config::KvFile::parseText(R"(
governor      = pidcap
epoch_windows = 8
cap_w         = 1.25
cap_rail      = vdd
kp_mhz_per_w  = 10.5
min_freq_mhz  = 150
)");
    const auto p = governor::governorParamsFromKv(kv);
    EXPECT_EQ(p.policy, "pidcap");
    EXPECT_EQ(p.epochWindows, 8u);
    EXPECT_DOUBLE_EQ(p.capW, 1.25);
    EXPECT_EQ(p.capRail, "vdd");
    EXPECT_DOUBLE_EQ(p.kpMhzPerW, 10.5);
    EXPECT_DOUBLE_EQ(p.minFreqMhz, 150.0);
    // Untouched knobs keep their defaults.
    EXPECT_DOUBLE_EQ(p.kiMhzPerW, 12.0);
    EXPECT_NO_THROW(kv.checkUnknownKeys("test"));

    EXPECT_THROW(governor::governorParamsFromKv(config::KvFile::parseText(
                     "epoch_windows = 0")),
                 config::KvError);
}

TEST(GovernorScenario, ParsesPhasesAndRejectsUnknownKeys)
{
    const auto sc = governor::Scenario::fromText(R"(
name             = t
workload         = hist
tiles            = 9
threads_per_core = 2
governor         = theas
cycles           = 5000
phases           = 2
phase1.cap_w     = 1.5
phase1.workload  = int
)");
    EXPECT_EQ(sc.name, "t");
    EXPECT_EQ(sc.workload, "hist");
    EXPECT_EQ(sc.tiles, 9u);
    ASSERT_EQ(sc.phases.size(), 2u);
    EXPECT_EQ(sc.phases[0].cycles, 5000u);
    EXPECT_EQ(sc.phases[0].workload, "");
    EXPECT_DOUBLE_EQ(sc.phases[1].capW, 1.5);
    EXPECT_EQ(sc.phases[1].workload, "int");

    EXPECT_THROW(governor::Scenario::fromText("workloda = int"),
                 config::KvError); // typo = unknown key
    EXPECT_THROW(governor::Scenario::fromText("workload = spec"),
                 config::KvError);
    EXPECT_THROW(governor::Scenario::fromText("tiles = 26"),
                 config::KvError);
    EXPECT_THROW(governor::Scenario::fromText("phases = 1\n"
                                              "phase0.cycles = 0"),
                 config::KvError);
    EXPECT_THROW(governor::Scenario::fromFile("/nonexistent/x.kv"),
                 config::KvError);
}

/** Shared mini-scenario: HP on all tiles, two short phases. */
governor::Scenario
miniScenario(const std::string &policy)
{
    governor::Scenario sc = governor::Scenario::fromText(R"(
name             = mini
workload         = hp
tiles            = 25
threads_per_core = 2
epoch_windows    = 2
cycles           = 40000
phases           = 2
phase1.cap_w     = 1.8
)");
    sc.gov.policy = policy;
    if (policy == "pidcap")
        sc.gov.capW = 2.5;
    return sc;
}

governor::ScenarioResult
runMini(const std::string &policy, unsigned engine_threads = 1,
        telemetry::TelemetryRecorder *rec = nullptr)
{
    sim::SystemOptions opts;
    opts.engineThreads = engine_threads;
    sim::System sys(opts);
    if (rec != nullptr)
        sys.attachTelemetry(rec);
    return governor::runScenario(sys, miniScenario(policy));
}

std::uint64_t
bitsOf(double d)
{
    std::uint64_t u = 0;
    std::memcpy(&u, &d, sizeof(u));
    return u;
}

TEST(GovernorEndToEnd, PoliciesProduceDistinctReproducibleTrajectories)
{
    std::set<std::uint64_t> energies;
    for (const char *policy : {"none", "ondemand", "pidcap", "theas"}) {
        const auto a = runMini(policy);
        const auto b = runMini(policy);
        // Reproducible: bit-identical run to run ...
        EXPECT_EQ(bitsOf(a.energyJ), bitsOf(b.energyJ)) << policy;
        EXPECT_EQ(bitsOf(a.seconds), bitsOf(b.seconds)) << policy;
        EXPECT_EQ(a.cycles, b.cycles) << policy;
        EXPECT_EQ(a.insts, b.insts) << policy;
        EXPECT_GT(a.energyJ, 0.0);
        EXPECT_GT(a.insts, 0u);
        energies.insert(bitsOf(a.energyJ));
    }
    // ... and distinct across policies.
    EXPECT_EQ(energies.size(), 4u);
}

TEST(GovernorEndToEnd, PidHoldsTheCapAfterSettling)
{
    // One settling phase, then a long measured phase under the same
    // budget; the paper-tolerance acceptance bound is max(0.15 W, 8%).
    governor::Scenario sc = governor::Scenario::fromText(R"(
name             = cap_hold
workload         = hp
tiles            = 25
threads_per_core = 2
governor         = pidcap
epoch_windows    = 2
cap_w            = 2.0
phases           = 2
phase0.cycles    = 120000
phase1.cycles    = 240000
)");
    sim::System sys{sim::SystemOptions{}};
    const auto r = governor::runScenario(sys, sc);
    ASSERT_EQ(r.phases.size(), 2u);
    const double held = r.phases[1].avgPowerW;
    const double cap = 2.0;
    EXPECT_NEAR(held, cap, std::max(0.15, 0.08 * cap));
}

TEST(GovernorEndToEnd, GovernorTelemetrySeriesAreEmitted)
{
    telemetry::TelemetryRecorder rec;
    const auto r = runMini("pidcap", 1, &rec);
    (void)r;
    namespace ts = telemetry::schema;
    for (const char *name :
         {ts::kGovernorFreqMhz, ts::kGovernorVddV, ts::kGovernorPowerW,
          ts::kGovernorCapW, ts::kGovernorGatedTiles, ts::kGovernorEpochs})
        EXPECT_NE(rec.find(name), nullptr) << name;
    EXPECT_GT(rec.sum(ts::kGovernorEpochs), 0.0);
    // The per-rail gauges ride along on every governed window.
    for (const char *name :
         {"power.rail.vdd_w", "power.rail.vdd_v", "power.rail.vdd_a",
          "power.rail.vcs_w", "power.rail.vio_a"})
        EXPECT_NE(rec.find(name), nullptr) << name;
    // Current = power / setpoint, recorded consistently.
    const auto w = rec.aggregate("power.rail.vio_w");
    const auto a = rec.aggregate("power.rail.vio_a");
    EXPECT_GT(w.count, 0u);
    EXPECT_EQ(w.count, a.count);

    // Exports of bit-identical runs are byte-identical (CSV + JSONL).
    telemetry::TelemetryRecorder rec2;
    runMini("pidcap", 1, &rec2);
    std::ostringstream c1, c2, j1, j2;
    telemetry::writeCsv(c1, rec);
    telemetry::writeCsv(c2, rec2);
    telemetry::writeJsonl(j1, rec);
    telemetry::writeJsonl(j2, rec2);
    ASSERT_FALSE(c1.str().empty());
    EXPECT_EQ(c1.str(), c2.str());
    EXPECT_EQ(j1.str(), j2.str());
}

TEST(GovernorEndToEnd, DetachRestoresUngovernedBehaviour)
{
    // A governed segment followed by detach leaves the system running
    // ungoverned (no gates); runScenario detaches internally.
    sim::SystemOptions opts;
    sim::System sys(opts);
    const auto r = governor::runScenario(sys, miniScenario("theas"));
    EXPECT_GT(r.cycles, 0u);
    EXPECT_EQ(sys.dvfsGovernor(), nullptr);
    EXPECT_EQ(sys.gatedTileCount(), 0u);
    for (TileId t = 0; t < 25; ++t)
        EXPECT_FALSE(sys.pitonChip().tileGated(t));
}

TEST(GovernorEndToEnd, ProgressGuardFinishesGatedWork)
{
    // A counted kernel on a single tile under theas: the tile idles
    // long enough to be hard-gated mid-run (other tiles are empty), yet
    // the run must still complete — the progress guard force-runs one
    // unfinished tile per window.
    governor::Scenario sc = governor::Scenario::fromText(R"(
name             = tiny
workload         = int
tiles            = 2
threads_per_core = 1
governor         = theas
epoch_windows    = 1
iterations       = 4000
cycles           = 4000000
)");
    sim::System sys{sim::SystemOptions{}};
    const auto r = governor::runScenario(sys, sc);
    ASSERT_EQ(r.phases.size(), 1u);
    EXPECT_TRUE(r.phases[0].run.completed);
    EXPECT_FALSE(r.phases[0].run.stalled);
    EXPECT_GT(r.insts, 0u);
}

} // namespace
