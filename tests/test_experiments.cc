/**
 * @file
 * End-to-end integration tests: each characterization experiment must
 * reproduce the paper's published values (or their shape) through the
 * full stack — workload generator -> cycle simulator -> energy ledger
 * -> board monitors -> the paper's equations.
 */

#include <gtest/gtest.h>

#include "core/epi_experiment.hh"
#include "core/equations.hh"
#include "core/noc_experiment.hh"
#include "core/scaling_experiments.hh"
#include "core/thermal_experiments.hh"
#include "core/vf_experiments.hh"

namespace piton::core
{
namespace
{

using workloads::MemoryScenario;
using workloads::Microbench;
using workloads::OperandPattern;

TEST(Equations, EpiMatchesPaperFormula)
{
    // (1/25) * (Pinst - Pidle)/f * L
    const double epi =
        epiJoules(2.5, 2.0, 500.05e6, 10, 25);
    EXPECT_NEAR(jToPj(epi), 0.5 / 25.0 / 500.05e6 * 10 * 1e12, 1e-6);
}

TEST(Equations, EpfMatchesPaperFormula)
{
    const double epf = epfJoules(2.1, 2.0, 500.05e6);
    EXPECT_NEAR(jToPj(epf), 0.1 / 500.05e6 * 47.0 / 7.0 * 1e12, 1e-6);
}

class EpiIntegration : public testing::Test
{
  protected:
    EpiExperiment exp_{sim::SystemOptions{}, /*samples=*/48};
};

TEST_F(EpiIntegration, AddEpiNearPaperAnchor)
{
    const EpiRow row =
        exp_.measure(workloads::epiVariant("add"), OperandPattern::Random);
    // add(random) ~ 95 pJ (one third of an L1-hit ldx).
    EXPECT_NEAR(row.epiPj, 95.0, 20.0);
}

TEST_F(EpiIntegration, OperandValuesShiftEpi)
{
    const EpiRow min_row =
        exp_.measure(workloads::epiVariant("add"), OperandPattern::Minimum);
    const EpiRow rnd_row =
        exp_.measure(workloads::epiVariant("add"), OperandPattern::Random);
    const EpiRow max_row =
        exp_.measure(workloads::epiVariant("add"), OperandPattern::Maximum);
    EXPECT_LT(min_row.epiPj, rnd_row.epiPj);
    EXPECT_LT(rnd_row.epiPj, max_row.epiPj);
    // The spread is significant (tens of pJ), as in Fig. 11.
    EXPECT_GT(max_row.epiPj - min_row.epiPj, 30.0);
}

TEST_F(EpiIntegration, LongLatencyInstructionsCostMore)
{
    const double sdivx =
        exp_.measure(workloads::epiVariant("sdivx"), OperandPattern::Random)
            .epiPj;
    const double mulx =
        exp_.measure(workloads::epiVariant("mulx"), OperandPattern::Random)
            .epiPj;
    const double add =
        exp_.measure(workloads::epiVariant("add"), OperandPattern::Random)
            .epiPj;
    EXPECT_GT(sdivx, mulx);
    EXPECT_GT(mulx, add);
    EXPECT_NEAR(sdivx, 950.0, 150.0); // near the 1 nJ top of Fig. 11
}

TEST_F(EpiIntegration, StoreBufferFullCostsMoreThanNotFull)
{
    const double stx_f =
        exp_.measure(workloads::epiVariant("stx (F)"),
                     OperandPattern::Random)
            .epiPj;
    const double stx_nf =
        exp_.measure(workloads::epiVariant("stx (NF)"),
                     OperandPattern::Random)
            .epiPj;
    // Rollback and re-execution pollute the stx(F) measurement.
    EXPECT_GT(stx_f, stx_nf + 50.0);
    EXPECT_NEAR(stx_nf, 310.0, 60.0);
}

TEST_F(EpiIntegration, RecomputeVsLoadInsight)
{
    // "Three add instructions can be executed with the same amount of
    // energy and latency as a ldx that hits in the L1 cache."
    const double add =
        exp_.measure(workloads::epiVariant("add"), OperandPattern::Random)
            .epiPj;
    const double ldx =
        exp_.measure(workloads::epiVariant("ldx"), OperandPattern::Random)
            .epiPj;
    EXPECT_NEAR(ldx / add, 3.0, 0.6);
    EXPECT_NEAR(ldx, 286.46, 40.0); // Table VII L1-hit row
}

class MemoryEnergyIntegration : public testing::Test
{
  protected:
    MemoryEnergyExperiment exp_{sim::SystemOptions{}, /*samples=*/48};
};

TEST_F(MemoryEnergyIntegration, TableVIIEnergyLadder)
{
    const auto l1 = exp_.measure(MemoryScenario::L1Hit);
    const auto local = exp_.measure(MemoryScenario::LocalL2Hit);
    const auto remote4 = exp_.measure(MemoryScenario::RemoteL2Hit4);
    const auto remote8 = exp_.measure(MemoryScenario::RemoteL2Hit8);

    // Paper: 0.286, 1.54, 1.87, 1.97 nJ.
    EXPECT_NEAR(l1.energyNj, 0.286, 0.06);
    EXPECT_NEAR(local.energyNj, 1.54, 0.45);
    EXPECT_GT(local.energyNj, 4.0 * l1.energyNj);
    EXPECT_GT(remote4.energyNj, local.energyNj);
    EXPECT_GT(remote8.energyNj, remote4.energyNj);
    // "The difference between accessing a local L2 and remote L2 is
    // relatively small."
    EXPECT_LT(remote8.energyNj, 2.0 * local.energyNj);
}

TEST_F(MemoryEnergyIntegration, L2MissDwarfsHits)
{
    const auto miss = exp_.measure(MemoryScenario::L2Miss);
    // Paper: 308.7 +/- 3.3 nJ.
    EXPECT_NEAR(miss.energyNj, 308.7, 40.0);
    EXPECT_EQ(miss.latency, 424u);
}

class NocIntegration : public testing::Test
{
  protected:
    NocEnergyExperiment exp_{sim::SystemOptions{}, /*samples=*/48};
};

TEST_F(NocIntegration, EpfSlopesMatchFig12)
{
    std::vector<EpfRow> rows;
    for (const auto p : {SwitchPattern::NSW, SwitchPattern::HSW,
                         SwitchPattern::FSW})
        for (const std::uint32_t h : {0u, 2u, 4u, 6u, 8u})
            rows.push_back(exp_.measure(p, h));
    const auto trends = NocEnergyExperiment::trends(rows);
    ASSERT_EQ(trends.size(), 3u);
    for (const auto &t : trends) {
        switch (t.pattern) {
          case SwitchPattern::NSW:
            EXPECT_NEAR(t.pjPerHop, 3.58, 1.2);
            break;
          case SwitchPattern::HSW:
            EXPECT_NEAR(t.pjPerHop, 11.16, 2.5);
            break;
          case SwitchPattern::FSW:
            EXPECT_NEAR(t.pjPerHop, 16.68, 3.0);
            break;
          default:
            break;
        }
        EXPECT_GT(t.r2, 0.8) << switchPatternName(t.pattern);
    }
}

TEST_F(NocIntegration, FswaWithinErrorOfFsw)
{
    // "The FSWA case consumes slightly more energy, but is within the
    // measurement error."
    const auto fsw = exp_.measure(SwitchPattern::FSW, 8);
    const auto fswa = exp_.measure(SwitchPattern::FSWA, 8);
    EXPECT_NEAR(fswa.epfPj, fsw.epfPj, 25.0);
}

TEST_F(NocIntegration, EightHopFlitCostsAboutOneAdd)
{
    // "Sending a flit across the entire chip (8 hops) consumes ...
    // around the same as an add instruction."
    const auto hsw8 = exp_.measure(SwitchPattern::HSW, 8);
    EXPECT_GT(hsw8.epfPj, 40.0);
    EXPECT_LT(hsw8.epfPj, 160.0);
}

TEST(VfIntegration, Fig9ShapeReproduced)
{
    const VfScalingExperiment exp;
    const auto points = exp.runAll();
    // 3 chips x 9 voltage points.
    EXPECT_EQ(points.size(), 27u);

    auto at = [&](int chip_id, double v) {
        for (const auto &p : points)
            if (p.chipId == chip_id && std::abs(p.vddV - v) < 1e-9)
                return p;
        ADD_FAILURE() << "missing point";
        return VfPoint{};
    };

    // Calibration anchors from Fig. 9 / Fig. 10's (V, f) labels.
    EXPECT_NEAR(at(2, 1.00).fmaxMhz, 514.33, 12.0);
    EXPECT_NEAR(at(2, 0.80).fmaxMhz, 285.74, 10.0);
    // Chip #1 is fastest at low voltage...
    EXPECT_GT(at(1, 0.80).fmaxMhz, at(2, 0.80).fmaxMhz);
    EXPECT_GT(at(1, 0.80).fmaxMhz, at(3, 0.80).fmaxMhz);
    // ... but collapses at 1.2 V (thermally limited).
    EXPECT_TRUE(at(1, 1.20).thermallyLimited);
    EXPECT_LT(at(1, 1.20).fmaxMhz, at(1, 1.15).fmaxMhz);
    EXPECT_LT(at(1, 1.20).fmaxMhz, at(2, 1.20).fmaxMhz);
}

TEST(VfIntegration, TableVDefaults)
{
    const DefaultPowerResult r = measureDefaultPower(2, 48);
    EXPECT_NEAR(r.staticMw, 389.3, 10.0);
    EXPECT_NEAR(r.idleMw, 2015.3, 45.0);
    EXPECT_LT(r.staticErrMw, 6.0);
    EXPECT_LT(r.idleErrMw, 6.0);
}

TEST(VfIntegration, Fig10PowerGrowsSuperlinearly)
{
    const StaticIdleExperiment exp(sim::SystemOptions{}, /*samples=*/24);
    const auto low = exp.measure(0.80);
    const auto nom = exp.measure(1.00);
    const auto high = exp.measure(1.15);
    EXPECT_LT(low.totalIdleW(), nom.totalIdleW());
    EXPECT_LT(nom.totalIdleW(), high.totalIdleW());
    // Exponential-looking growth: the 1.15 V point is much more than
    // the linear extrapolation from 0.8 -> 1.0 V.
    const double linear_extrap =
        nom.totalIdleW()
        + (nom.totalIdleW() - low.totalIdleW()) * (0.15 / 0.20);
    EXPECT_GT(high.totalIdleW(), linear_extrap * 1.1);
    // Core (VDD) dominates the stack; SRAM static is the smallest.
    EXPECT_GT(nom.coreDynamicW, nom.sramDynamicW);
    EXPECT_GT(nom.coreStaticW, nom.sramStaticW);
}

TEST(ScalingIntegration, Fig13LinearScalingAndOrdering)
{
    const PowerScalingExperiment exp(sim::SystemOptions{}, /*samples=*/24);
    const std::vector<std::uint32_t> grid = {1, 7, 13, 19, 25};
    const auto points = exp.runAll(grid);
    const auto trends = PowerScalingExperiment::trends(points);
    ASSERT_EQ(trends.size(), 6u);

    auto slope = [&](Microbench b, std::uint32_t tpc) {
        for (const auto &t : trends)
            if (t.bench == b && t.threadsPerCore == tpc)
                return t.mwPerCore;
        ADD_FAILURE();
        return 0.0;
    };

    // Power scales linearly with core count for the fixed-work-per-
    // thread benchmarks (Int, HP); Hist's 2 T/C curve is the paper's
    // rise-then-drop (checked below), so only Int/HP get the r2 gate.
    for (const auto &t : trends) {
        if (t.bench != Microbench::Hist) {
            EXPECT_GT(t.r2, 0.95) << microbenchName(t.bench);
        }
    }
    // HP consumes the most, Hist the least, for both configurations.
    EXPECT_GT(slope(Microbench::HP, 1), slope(Microbench::Int, 1));
    EXPECT_GT(slope(Microbench::Int, 1), slope(Microbench::Hist, 1));
    EXPECT_GT(slope(Microbench::HP, 2), slope(Microbench::Int, 2));
    EXPECT_GT(slope(Microbench::Int, 2), slope(Microbench::Hist, 2));
    // 2 T/C scales faster than 1 T/C for Int and HP.
    EXPECT_GT(slope(Microbench::Int, 2), slope(Microbench::Int, 1));
    EXPECT_GT(slope(Microbench::HP, 2), slope(Microbench::HP, 1));
}

TEST(ScalingIntegration, Fig13HistDropsBeyond17CoresAt2TPerCore)
{
    // "Hist has a unique trend where power begins to drop with
    // increasing core counts beyond 17 cores for the 2 T/C
    // configuration" (Section IV-H1).
    const PowerScalingExperiment exp(sim::SystemOptions{}, /*samples=*/24);
    const auto p9 = exp.measure(Microbench::Hist, 2, 9);
    const auto p17 = exp.measure(Microbench::Hist, 2, 17);
    const auto p25 = exp.measure(Microbench::Hist, 2, 25);
    EXPECT_GT(p17.fullChipPowerW, p9.fullChipPowerW);
    EXPECT_LT(p25.fullChipPowerW, p17.fullChipPowerW - 0.1);
    // The 1 T/C configuration keeps rising to the full chip.
    const auto q17 = exp.measure(Microbench::Hist, 1, 17);
    const auto q25 = exp.measure(Microbench::Hist, 1, 25);
    EXPECT_GT(q25.fullChipPowerW, q17.fullChipPowerW);
}

TEST(ScalingIntegration, HpAtFullChipIsHighestPower)
{
    const PowerScalingExperiment exp(sim::SystemOptions{}, /*samples=*/24);
    const auto hp = exp.measure(Microbench::HP, 2, 25);
    const auto int_b = exp.measure(Microbench::Int, 2, 25);
    // "HP exhibits the highest power we have observed on Piton"
    // (~3.5 W on all 50 threads).
    EXPECT_GT(hp.fullChipPowerW, int_b.fullChipPowerW);
    EXPECT_GT(hp.fullChipPowerW, 2.8);
    EXPECT_LT(hp.fullChipPowerW, 4.6);
}

TEST(ScalingIntegration, Fig14MultithreadingVsMulticore)
{
    const MtVsMcExperiment exp(sim::SystemOptions{}, /*iterations=*/4000,
                               /*hist_elements=*/1024,
                               /*hist_outer_iters=*/2);
    // Int at 8 threads: 8 cores x 1 T/C vs 4 cores x 2 T/C.
    const auto mc = exp.measure(Microbench::Int, 1, 8);
    const auto mt = exp.measure(Microbench::Int, 2, 8);
    // Multithreading halves the idle-charged cores...
    EXPECT_NEAR(mt.activeCoresIdleW, mc.activeCoresIdleW / 2.0, 1e-9);
    // ... consumes less total power ...
    EXPECT_LT(mt.totalPowerW(), mc.totalPowerW());
    // ... but runs ~2x longer (no overlap for pure integer work), so
    // total energy is higher for multithreading (the paper's insight).
    EXPECT_GT(mt.executionSeconds, 1.6 * mc.executionSeconds);
    EXPECT_GT(mt.totalEnergyJ(), mc.totalEnergyJ());
}

TEST(ScalingIntegration, Fig14HistFavorsMultithreading)
{
    const MtVsMcExperiment exp(sim::SystemOptions{}, /*iterations=*/4000,
                               /*hist_elements=*/1024,
                               /*hist_outer_iters=*/2);
    const auto mc = exp.measure(Microbench::Hist, 1, 8);
    const auto mt = exp.measure(Microbench::Hist, 2, 8);
    // Hist's memory/compute overlap makes multithreading's execution
    // time close to multicore's, so halving the idle cores wins.
    EXPECT_LT(mt.executionSeconds, 1.6 * mc.executionSeconds);
    EXPECT_LT(mt.totalEnergyJ(), mc.totalEnergyJ() * 1.05);
}

TEST(ThermalIntegration, Fig17ExponentialPowerTemperature)
{
    const ThermalSweepExperiment exp(thermalStudyOptions(), /*samples=*/16);
    const auto pts0 = exp.sweep(0, 8);
    const auto pts50 = exp.sweep(50, 8);
    ASSERT_EQ(pts0.size(), 8u);
    // More active threads -> more power at every fan position.
    for (std::size_t i = 0; i < pts0.size(); ++i)
        EXPECT_GT(pts50[i].powerW, pts0[i].powerW);
    // Tilting the fan raises temperature and (through leakage) power.
    EXPECT_GT(pts0.back().packageTempC, pts0.front().packageTempC + 1.0);
    EXPECT_GT(pts0.back().powerW, pts0.front().powerW);
    // Fig. 17's ranges: package 36-56 C, power 0.5-0.9 W.
    EXPECT_GT(pts0.front().packageTempC, 25.0);
    EXPECT_LT(pts50.back().packageTempC, 72.0);
    EXPECT_GT(pts0.front().powerW, 0.3);
    EXPECT_LT(pts50.back().powerW, 1.4);
}

TEST(ThermalIntegration, Fig18InterleavedRunsCooler)
{
    const SchedulingExperiment exp(thermalStudyOptions(), /*samples=*/16);
    const auto sync = exp.run(Schedule::Synchronized, 10.0, 300.0, 0.5);
    const auto inter = exp.run(Schedule::Interleaved, 10.0, 300.0, 0.5);
    // Same average dynamic power, but synchronized swings harder...
    EXPECT_GT(sync.tempSwingC, 3.0 * inter.tempSwingC);
    // ... and interleaved averages cooler (paper: 0.22 C).
    EXPECT_GT(sync.avgPackageTempC, inter.avgPackageTempC);
    EXPECT_LT(sync.avgPackageTempC - inter.avgPackageTempC, 1.5);
}

} // namespace
} // namespace piton::core
