/**
 * @file
 * Logging contract (common/logging): the level filter gates emission,
 * and concurrent threads never interleave mid-record — each record is
 * formatted fully and emitted with one stdio call, so captured output
 * must tokenize into intact lines.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.hh"

namespace
{

using namespace piton;

/** Restore the global level after each test. */
class LoggingTest : public ::testing::Test
{
  protected:
    void SetUp() override { saved_ = logLevel(); }
    void TearDown() override { setLogLevel(saved_); }

  private:
    LogLevel saved_ = LogLevel::Info;
};

TEST_F(LoggingTest, ParseLogLevelAcceptsTheDocumentedNames)
{
    LogLevel level = LogLevel::Info;
    EXPECT_TRUE(parseLogLevel("silent", level));
    EXPECT_EQ(level, LogLevel::Silent);
    EXPECT_TRUE(parseLogLevel("warn", level));
    EXPECT_EQ(level, LogLevel::Warn);
    EXPECT_TRUE(parseLogLevel("info", level));
    EXPECT_EQ(level, LogLevel::Info);
    EXPECT_TRUE(parseLogLevel("debug", level));
    EXPECT_EQ(level, LogLevel::Debug);

    level = LogLevel::Warn;
    EXPECT_FALSE(parseLogLevel("verbose", level));
    EXPECT_EQ(level, LogLevel::Warn); // untouched on failure
}

TEST_F(LoggingTest, LevelFilterGatesEmission)
{
    setLogLevel(LogLevel::Silent);
    EXPECT_FALSE(logEnabled(LogLevel::Warn));
    EXPECT_FALSE(logEnabled(LogLevel::Info));
    EXPECT_FALSE(logEnabled(LogLevel::Debug));

    testing::internal::CaptureStderr();
    piton_warn("suppressed %d", 1);
    piton_debug("suppressed %d", 2);
    EXPECT_TRUE(testing::internal::GetCapturedStderr().empty());

    setLogLevel(LogLevel::Warn);
    EXPECT_TRUE(logEnabled(LogLevel::Warn));
    EXPECT_FALSE(logEnabled(LogLevel::Info));

    testing::internal::CaptureStderr();
    piton_warn("emitted");
    piton_debug("still suppressed");
    EXPECT_EQ(testing::internal::GetCapturedStderr(), "warn: emitted\n");

    setLogLevel(LogLevel::Debug);
    testing::internal::CaptureStderr();
    piton_debug("now visible");
    EXPECT_EQ(testing::internal::GetCapturedStderr(),
              "debug: now visible\n");
}

TEST_F(LoggingTest, ConcurrentRecordsNeverInterleave)
{
    setLogLevel(LogLevel::Warn);
    constexpr int kThreads = 8;
    constexpr int kRecords = 200;

    testing::internal::CaptureStderr();
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([t] {
            for (int i = 0; i < kRecords; ++i)
                piton_warn("thread=%d record=%d payload=%s", t, i,
                           "xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx");
        });
    for (auto &th : threads)
        th.join();
    const std::string captured = testing::internal::GetCapturedStderr();

    // Every line must be one complete record: correct prefix, correct
    // payload tail, nothing spliced from another thread.
    std::istringstream stream(captured);
    std::string line;
    int lines = 0;
    int per_thread[kThreads] = {};
    while (std::getline(stream, line)) {
        ++lines;
        ASSERT_EQ(line.rfind("warn: thread=", 0), 0u) << line;
        ASSERT_NE(line.find(" record="), std::string::npos) << line;
        const std::string tail = "payload=xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx";
        ASSERT_EQ(line.substr(line.size() - tail.size()), tail) << line;
        int thread_id = -1, record = -1;
        ASSERT_EQ(std::sscanf(line.c_str(),
                              "warn: thread=%d record=%d", &thread_id,
                              &record),
                  2)
            << line;
        ASSERT_GE(thread_id, 0);
        ASSERT_LT(thread_id, kThreads);
        ++per_thread[thread_id];
    }
    EXPECT_EQ(lines, kThreads * kRecords);
    for (int t = 0; t < kThreads; ++t)
        EXPECT_EQ(per_thread[t], kRecords) << "thread " << t;
}

TEST_F(LoggingTest, InformGoesToStdoutWarnToStderr)
{
    setLogLevel(LogLevel::Info);
    testing::internal::CaptureStdout();
    testing::internal::CaptureStderr();
    piton_inform("status %d", 42);
    piton_warn("careful");
    EXPECT_EQ(testing::internal::GetCapturedStdout(), "info: status 42\n");
    EXPECT_EQ(testing::internal::GetCapturedStderr(), "warn: careful\n");
}

} // namespace
